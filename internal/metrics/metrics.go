// Package metrics collects the paper's performance measurements: network
// convergence time, control overhead in layer-2 bytes, and blast radius
// (the number of routers that updated their routing tables after a failure).
// It is the in-process equivalent of the paper's log-parsing pipeline: the
// protocols emit timestamped events, the harness brackets them around a
// failure injection, and the computations in this package turn them into
// the numbers plotted in Figs. 4-6.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Recorder receives protocol events. Both the BGP speaker and the MR-MTP
// router report through this interface.
type Recorder interface {
	// RouteUpdate reports that node changed its routing/VID table.
	RouteUpdate(at time.Duration, node string)
	// ControlMessage reports that node transmitted an update-class
	// control message of the given layer-2 size. Keep-alives are NOT
	// reported here; they are measured separately (Figs. 9-10).
	ControlMessage(at time.Duration, node string, l2Bytes int)
}

// Nop is a Recorder that discards everything.
type Nop struct{}

// RouteUpdate implements Recorder.
func (Nop) RouteUpdate(time.Duration, string) {}

// ControlMessage implements Recorder.
func (Nop) ControlMessage(time.Duration, string, int) {}

// Event is one recorded protocol event.
type Event struct {
	At    time.Duration
	Node  string
	Kind  string // "route", "control", or "accuse"
	Bytes int
	// Detail carries kind-specific payload: for "accuse" events, the
	// accused directed link ("From->To").
	Detail string
}

// Log is an append-only Recorder retaining every event.
type Log struct {
	Events []Event
}

// Accusation records a gray-failure localization verdict from the
// observability plane (DESIGN.md §12): node's localizer accused the
// directed link named by detail.
func (l *Log) Accusation(at time.Duration, node, detail string) {
	l.Events = append(l.Events, Event{At: at, Node: node, Kind: "accuse", Detail: detail})
}

// RouteUpdate implements Recorder.
func (l *Log) RouteUpdate(at time.Duration, node string) {
	l.Events = append(l.Events, Event{At: at, Node: node, Kind: "route"})
}

// ControlMessage implements Recorder.
func (l *Log) ControlMessage(at time.Duration, node string, bytes int) {
	l.Events = append(l.Events, Event{At: at, Node: node, Kind: "control", Bytes: bytes})
}

// Reset discards all recorded events (the harness calls this once the
// fabric reaches steady state, so only post-failure events are analyzed).
func (l *Log) Reset() { l.Events = nil }

// Analysis summarizes the events after a failure, exactly as §VI of the
// paper computes its metrics.
type Analysis struct {
	FailureAt time.Duration
	// Convergence is the time from the failure until the update
	// messages stopped (§VI.B: "When the update messages stopped, we
	// recorded the end time for convergence"). Routers that silently
	// clean up state without disseminating anything — e.g. a BGP
	// speaker whose ECMP group shrinks with no best-path change — do
	// not extend convergence, exactly as the paper's measurement cannot
	// see them. When a failure produces no update messages at all, the
	// last routing-table change is used instead.
	Convergence time.Duration
	// BlastRadius counts distinct routers that changed their tables.
	BlastRadius int
	// ControlBytes sums the layer-2 bytes of update messages sent.
	ControlBytes int
	// ControlMessages counts update messages sent.
	ControlMessages int
	// UpdatedNodes lists the routers in the blast radius, sorted.
	UpdatedNodes []string
}

// Analyze computes the post-failure summary from events recorded at or
// after failureAt.
func (l *Log) Analyze(failureAt time.Duration) Analysis {
	a := Analysis{FailureAt: failureAt}
	updated := make(map[string]bool)
	var lastControl, lastRoute time.Duration
	for _, e := range l.Events {
		if e.At < failureAt {
			continue
		}
		switch e.Kind {
		case "route":
			updated[e.Node] = true
			if e.At > lastRoute {
				lastRoute = e.At
			}
		case "control":
			a.ControlBytes += e.Bytes
			a.ControlMessages++
			if e.At > lastControl {
				lastControl = e.At
			}
		}
	}
	last := lastControl
	if last == 0 {
		last = lastRoute
	}
	if last > failureAt {
		a.Convergence = last - failureAt
	}
	a.BlastRadius = len(updated)
	for n := range updated {
		a.UpdatedNodes = append(a.UpdatedNodes, n)
	}
	sort.Strings(a.UpdatedNodes)
	return a
}

// String renders a one-line summary.
func (a Analysis) String() string {
	return fmt.Sprintf("convergence=%v blast=%d control=%dB/%dmsg [%s]",
		a.Convergence, a.BlastRadius, a.ControlBytes, a.ControlMessages,
		strings.Join(a.UpdatedNodes, ","))
}

// TimelineEntry is one human-readable post-failure event.
type TimelineEntry struct {
	At   time.Duration
	What string
}

// Timeline renders the post-failure events in order, for operator-facing
// output (the examples print it as a reconvergence narrative).
func (l *Log) Timeline(failureAt time.Duration) []TimelineEntry {
	var out []TimelineEntry
	for _, e := range l.Events {
		if e.At < failureAt {
			continue
		}
		switch e.Kind {
		case "route":
			out = append(out, TimelineEntry{e.At, e.Node + " updated its routing table"})
		case "control":
			out = append(out, TimelineEntry{e.At, fmt.Sprintf("%s sent a %d-byte update", e.Node, e.Bytes)})
		case "accuse":
			out = append(out, TimelineEntry{e.At, fmt.Sprintf("%s accused link %s", e.Node, e.Detail)})
		}
	}
	return out
}

// Tee fans events out to several recorders (e.g. the in-memory Log and a
// raw text journal).
type Tee []Recorder

// RouteUpdate implements Recorder.
func (t Tee) RouteUpdate(at time.Duration, node string) {
	for _, r := range t {
		r.RouteUpdate(at, node)
	}
}

// ControlMessage implements Recorder.
func (t Tee) ControlMessage(at time.Duration, node string, bytes int) {
	for _, r := range t {
		r.ControlMessage(at, node, bytes)
	}
}
