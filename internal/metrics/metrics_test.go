package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestAnalyzeBasics(t *testing.T) {
	var l Log
	l.RouteUpdate(100*time.Millisecond, "S-1-1")
	l.ControlMessage(110*time.Millisecond, "S-1-1", 18)
	l.RouteUpdate(120*time.Millisecond, "L-1-2")
	l.ControlMessage(130*time.Millisecond, "T-1", 19)
	l.RouteUpdate(140*time.Millisecond, "L-1-2") // same node twice

	a := l.Analyze(100 * time.Millisecond)
	// Convergence ends at the last update *message* (130ms), not the
	// later silent table change (140ms) — the paper's §VI.B method.
	if a.Convergence != 30*time.Millisecond {
		t.Errorf("convergence = %v, want 30ms", a.Convergence)
	}
	if a.BlastRadius != 2 {
		t.Errorf("blast = %d, want 2 (distinct nodes)", a.BlastRadius)
	}
	if a.ControlBytes != 37 || a.ControlMessages != 2 {
		t.Errorf("control = %d B / %d msgs, want 37/2", a.ControlBytes, a.ControlMessages)
	}
	if len(a.UpdatedNodes) != 2 || a.UpdatedNodes[0] != "L-1-2" {
		t.Errorf("UpdatedNodes = %v", a.UpdatedNodes)
	}
}

func TestAnalyzeExcludesPreFailureEvents(t *testing.T) {
	var l Log
	l.RouteUpdate(50*time.Millisecond, "old")
	l.ControlMessage(60*time.Millisecond, "old", 100)
	l.RouteUpdate(200*time.Millisecond, "new")
	a := l.Analyze(100 * time.Millisecond)
	if a.BlastRadius != 1 || a.ControlBytes != 0 {
		t.Errorf("pre-failure events leaked into analysis: %+v", a)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	var l Log
	a := l.Analyze(time.Second)
	if a.Convergence != 0 || a.BlastRadius != 0 || a.ControlBytes != 0 {
		t.Errorf("empty analysis = %+v", a)
	}
}

func TestReset(t *testing.T) {
	var l Log
	l.RouteUpdate(time.Millisecond, "x")
	l.Reset()
	if len(l.Events) != 0 {
		t.Error("Reset did not clear events")
	}
}

func TestNopRecorder(t *testing.T) {
	var n Nop
	n.RouteUpdate(0, "x")
	n.ControlMessage(0, "x", 1)
}

func TestAnalysisString(t *testing.T) {
	var l Log
	l.RouteUpdate(time.Millisecond, "n1")
	s := l.Analyze(0).String()
	for _, want := range []string{"blast=1", "n1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestAnalyzeProperties(t *testing.T) {
	// Control bytes are the sum of recorded message sizes after the
	// failure instant, and blast radius never exceeds event count.
	f := func(sizes []uint8, failIdx uint8) bool {
		var l Log
		for i, s := range sizes {
			l.ControlMessage(time.Duration(i)*time.Millisecond, "n", int(s))
		}
		failAt := time.Duration(failIdx%64) * time.Millisecond
		a := l.Analyze(failAt)
		want := 0
		for i, s := range sizes {
			if time.Duration(i)*time.Millisecond >= failAt {
				want += int(s)
			}
		}
		return a.ControlBytes == want && a.BlastRadius == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
