// Package routerlog reproduces the paper's measurement *methodology*, not
// just its results. On the testbed, a bash script recorded the interface
// failure instant, print statements in the MR-MTP C code (and tshark for
// BGP) recorded update messages, and Python scripts parsed the collected
// logs into convergence times (§VI.B). This package provides the same
// pipeline: routers journal timestamped text lines, the journal renders to
// the raw log format, a parser reads it back, and an analyzer recomputes
// the metrics — so the repository can cross-validate its in-memory
// measurements against a log-derived computation, exactly as a testbed user
// would.
package routerlog

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Line is one journal entry.
type Line struct {
	At   time.Duration
	Node string
	Text string
}

// Journal collects timestamped log lines from every router. It implements
// metrics.Recorder, so it can be plugged into the protocols directly, and
// offers Logf for harness-level events (failure injection).
type Journal struct {
	Lines []Line
}

// Logf appends a line.
func (j *Journal) Logf(at time.Duration, node, format string, args ...any) {
	j.Lines = append(j.Lines, Line{At: at, Node: node, Text: fmt.Sprintf(format, args...)})
}

// RouteUpdate implements metrics.Recorder.
func (j *Journal) RouteUpdate(at time.Duration, node string) {
	j.Logf(at, node, "routing table updated")
}

// ControlMessage implements metrics.Recorder.
func (j *Journal) ControlMessage(at time.Duration, node string, l2Bytes int) {
	j.Logf(at, node, "update message sent bytes=%d", l2Bytes)
}

// FailureInjected records the failure instant, like the paper's bash
// script running `ip link set down` and stamping the time.
func (j *Journal) FailureInjected(at time.Duration, node string, port int) {
	j.Logf(at, node, "interface eth%d down (failure injected)", port)
}

// Render prints the journal as raw text logs, one file's worth: lines are
// "<seconds-with-µs> <node> <text>", sorted by time then insertion order.
func (j *Journal) Render() string {
	lines := append([]Line(nil), j.Lines...)
	sort.SliceStable(lines, func(i, k int) bool { return lines[i].At < lines[k].At })
	var b strings.Builder
	for _, l := range lines {
		fmt.Fprintf(&b, "%.6f %s %s\n", l.At.Seconds(), l.Node, l.Text)
	}
	return b.String()
}

// Parse reads logs rendered by Render (the "download and parse" step).
func Parse(text string) ([]Line, error) {
	var out []Line
	sc := bufio.NewScanner(strings.NewReader(text))
	for n := 1; sc.Scan(); n++ {
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		parts := strings.SplitN(raw, " ", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("routerlog: malformed line %d: %q", n, raw)
		}
		at, err := parseTimestamp(parts[0])
		if err != nil {
			return nil, fmt.Errorf("routerlog: bad timestamp on line %d: %v", n, err)
		}
		out = append(out, Line{At: at, Node: parts[1], Text: parts[2]})
	}
	return out, sc.Err()
}

// parseTimestamp reads "seconds.micros" exactly (float parsing would lose
// the microsecond precision the convergence numbers depend on).
func parseTimestamp(s string) (time.Duration, error) {
	dot := strings.IndexByte(s, '.')
	if dot < 0 {
		secs, err := strconv.ParseInt(s, 10, 64)
		return time.Duration(secs) * time.Second, err
	}
	secs, err := strconv.ParseInt(s[:dot], 10, 64)
	if err != nil {
		return 0, err
	}
	frac := s[dot+1:]
	if len(frac) > 6 {
		frac = frac[:6]
	}
	for len(frac) < 6 {
		frac += "0"
	}
	micros, err := strconv.ParseInt(frac, 10, 64)
	if err != nil {
		return 0, err
	}
	return time.Duration(secs)*time.Second + time.Duration(micros)*time.Microsecond, nil
}

// Analysis is the log-derived metric set of §VI.B-C.
type Analysis struct {
	FailureAt    time.Duration
	Convergence  time.Duration
	ControlBytes int
	ControlMsgs  int
	BlastRadius  int
}

// Analyze recomputes convergence time, control overhead, and blast radius
// from parsed log lines, exactly as the paper's scripts did: the failure
// line gives the start time; the last update message gives the end; bytes
// are summed from the update lines; the blast radius counts distinct
// routers logging a table update.
func Analyze(lines []Line) (Analysis, error) {
	var a Analysis
	foundFailure := false
	updated := make(map[string]bool)
	var lastUpdate time.Duration
	for _, l := range lines {
		switch {
		case strings.Contains(l.Text, "failure injected"):
			if !foundFailure || l.At < a.FailureAt {
				a.FailureAt = l.At
				foundFailure = true
			}
		case strings.HasPrefix(l.Text, "update message sent"):
			if !foundFailure {
				continue // pre-failure noise
			}
			var bytes int
			if _, err := fmt.Sscanf(l.Text, "update message sent bytes=%d", &bytes); err != nil {
				return a, fmt.Errorf("routerlog: unparseable update line: %q", l.Text)
			}
			a.ControlBytes += bytes
			a.ControlMsgs++
			if l.At > lastUpdate {
				lastUpdate = l.At
			}
		case l.Text == "routing table updated":
			if foundFailure {
				updated[l.Node] = true
			}
		}
	}
	if !foundFailure {
		return a, fmt.Errorf("routerlog: no failure-injection line in the logs")
	}
	if lastUpdate > a.FailureAt {
		a.Convergence = lastUpdate - a.FailureAt
	}
	a.BlastRadius = len(updated)
	return a, nil
}
