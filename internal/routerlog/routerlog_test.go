package routerlog

import (
	"strings"
	"testing"
	"time"
)

func TestRenderParseRoundTrip(t *testing.T) {
	var j Journal
	j.FailureInjected(16*time.Second+123*time.Microsecond, "L-1-1", 1)
	j.ControlMessage(16*time.Second+100*time.Millisecond, "S-1-1", 18)
	j.RouteUpdate(16*time.Second+101*time.Millisecond, "L-1-2")
	text := j.Render()
	lines, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 3 {
		t.Fatalf("parsed %d lines, want 3", len(lines))
	}
	if lines[0].Node != "L-1-1" || !strings.Contains(lines[0].Text, "failure injected") {
		t.Errorf("first line = %+v", lines[0])
	}
	// Microsecond precision survives the text round trip.
	if lines[0].At != 16*time.Second+123*time.Microsecond {
		t.Errorf("timestamp = %v", lines[0].At)
	}
}

func TestRenderSortsByTime(t *testing.T) {
	var j Journal
	j.RouteUpdate(2*time.Second, "b")
	j.RouteUpdate(1*time.Second, "a")
	lines, err := Parse(j.Render())
	if err != nil {
		t.Fatal(err)
	}
	if lines[0].Node != "a" || lines[1].Node != "b" {
		t.Errorf("lines not time-sorted: %+v", lines)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("justoneword\n"); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := Parse("abc node text\n"); err == nil {
		t.Error("bad timestamp accepted")
	}
	lines, err := Parse("\n\n")
	if err != nil || len(lines) != 0 {
		t.Error("blank lines should be skipped")
	}
}

func TestAnalyze(t *testing.T) {
	var j Journal
	// Pre-failure noise must be ignored.
	j.ControlMessage(10*time.Second, "S-1-1", 999)
	j.FailureInjected(16*time.Second, "L-1-1", 1)
	j.ControlMessage(16*time.Second+90*time.Millisecond, "S-1-1", 18)
	j.ControlMessage(16*time.Second+95*time.Millisecond, "T-1", 18)
	j.RouteUpdate(16*time.Second+96*time.Millisecond, "L-1-2")
	j.RouteUpdate(16*time.Second+97*time.Millisecond, "L-1-2") // same node
	lines, err := Parse(j.Render())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(lines)
	if err != nil {
		t.Fatal(err)
	}
	if a.FailureAt != 16*time.Second {
		t.Errorf("failure at %v", a.FailureAt)
	}
	if a.Convergence != 95*time.Millisecond {
		t.Errorf("convergence = %v, want 95ms (last update message)", a.Convergence)
	}
	if a.ControlBytes != 36 || a.ControlMsgs != 2 {
		t.Errorf("control = %d B / %d msgs", a.ControlBytes, a.ControlMsgs)
	}
	if a.BlastRadius != 1 {
		t.Errorf("blast = %d, want 1 distinct node", a.BlastRadius)
	}
}

func TestAnalyzeNoFailure(t *testing.T) {
	var j Journal
	j.RouteUpdate(time.Second, "x")
	lines, _ := Parse(j.Render())
	if _, err := Analyze(lines); err == nil {
		t.Error("analysis without a failure line should error")
	}
}
