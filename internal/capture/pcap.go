package capture

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/simnet"
)

// This file writes captures in the classic libpcap format so simulated
// traffic can be opened in Wireshark — the tool the paper's authors used
// for Figs. 9 and 10. Virtual time maps directly onto the pcap timestamp.

const (
	pcapMagic        = 0xa1b2c3d4
	pcapVersionMajor = 2
	pcapVersionMinor = 4
	// LINKTYPE_ETHERNET
	pcapLinkType = 1
	pcapSnapLen  = 65535
)

// Recorder retains raw frames (not just metadata) for pcap export. Attach
// with the same Tap/TapAll pattern as Capture.
type Recorder struct {
	frames []rawFrame
}

type rawFrame struct {
	at  time.Duration
	raw []byte
}

// Tap attaches the recorder to a link.
func (r *Recorder) Tap(l *simnet.Link) {
	l.Tap(func(at time.Duration, from *simnet.Port, raw []byte) {
		r.frames = append(r.frames, rawFrame{at: at, raw: append([]byte(nil), raw...)})
	})
}

// TapAll attaches the recorder to every link in the simulation.
func (r *Recorder) TapAll(sim simnet.Engine) {
	for _, l := range sim.Links() {
		r.Tap(l)
	}
}

// Count returns the number of recorded frames.
func (r *Recorder) Count() int { return len(r.frames) }

// WritePCAP writes the recorded frames as a libpcap file.
func (r *Recorder) WritePCAP(w io.Writer) error {
	hdr := make([]byte, 24)
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], pcapMagic)
	le.PutUint16(hdr[4:], pcapVersionMajor)
	le.PutUint16(hdr[6:], pcapVersionMinor)
	// thiszone, sigfigs zero.
	le.PutUint32(hdr[16:], pcapSnapLen)
	le.PutUint32(hdr[20:], pcapLinkType)
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	rec := make([]byte, 16)
	for _, f := range r.frames {
		le.PutUint32(rec[0:], uint32(f.at/time.Second))
		le.PutUint32(rec[4:], uint32(f.at%time.Second/time.Microsecond))
		le.PutUint32(rec[8:], uint32(len(f.raw)))
		le.PutUint32(rec[12:], uint32(len(f.raw)))
		if _, err := w.Write(rec); err != nil {
			return err
		}
		if _, err := w.Write(f.raw); err != nil {
			return err
		}
	}
	return nil
}

// PCAPFrame is a frame read back from a pcap stream.
type PCAPFrame struct {
	At  time.Duration
	Raw []byte
}

// ErrBadPCAP reports an unreadable pcap stream.
var ErrBadPCAP = errors.New("capture: malformed pcap")

// ReadPCAP parses a libpcap stream written by WritePCAP (little-endian,
// Ethernet link type). It exists so tests — and users without Wireshark —
// can round-trip captures.
func ReadPCAP(rd io.Reader) ([]PCAPFrame, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(rd, hdr); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPCAP, err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != pcapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadPCAP)
	}
	if le.Uint32(hdr[20:]) != pcapLinkType {
		return nil, fmt.Errorf("%w: not an Ethernet capture", ErrBadPCAP)
	}
	var out []PCAPFrame
	rec := make([]byte, 16)
	for {
		if _, err := io.ReadFull(rd, rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("%w: truncated record header", ErrBadPCAP)
		}
		incl := le.Uint32(rec[8:])
		if incl > pcapSnapLen {
			return nil, fmt.Errorf("%w: oversized record", ErrBadPCAP)
		}
		raw := make([]byte, incl)
		if _, err := io.ReadFull(rd, raw); err != nil {
			return nil, fmt.Errorf("%w: truncated record", ErrBadPCAP)
		}
		at := time.Duration(le.Uint32(rec[0:]))*time.Second +
			time.Duration(le.Uint32(rec[4:]))*time.Microsecond
		out = append(out, PCAPFrame{At: at, Raw: raw})
	}
}
