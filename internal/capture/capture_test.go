package capture

import (
	"strings"
	"testing"
	"time"

	"repro/internal/arp"
	"repro/internal/bfd"
	"repro/internal/bgp"
	"repro/internal/ethernet"
	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/tcp"
	"repro/internal/udp"
)

var (
	srcIP = netaddr.MakeIPv4(172, 16, 0, 2)
	dstIP = netaddr.MakeIPv4(172, 16, 0, 1)
)

func ethFrame(etherType uint16, payload []byte) []byte {
	f := ethernet.Frame{Dst: netaddr.Broadcast, EtherType: etherType, Payload: payload}
	return f.Marshal()
}

func ipFrame(proto byte, transport []byte) []byte {
	p := ipv4.Packet{Header: ipv4.Header{Protocol: proto, Src: srcIP, Dst: dstIP, TTL: 64}, Payload: transport}
	return ethFrame(ethernet.TypeIPv4, p.Marshal())
}

func TestClassifyMRMTP(t *testing.T) {
	cases := map[byte]Class{
		0x06: ClassMTPHello,
		0x07: ClassMTPUpdate,
		0x08: ClassMTPData,
		0x01: ClassMTPTree,
		0x03: ClassMTPTree,
	}
	for b, want := range cases {
		if got := Classify(ethFrame(ethernet.TypeMRMTP, []byte{b, 0, 0})); got != want {
			t.Errorf("type %#02x classified %s, want %s", b, got, want)
		}
	}
}

func TestClassifyARP(t *testing.T) {
	pkt := arp.Packet{Op: arp.OpRequest}
	if got := Classify(ethFrame(ethernet.TypeARP, pkt.Marshal())); got != ClassARP {
		t.Errorf("got %s, want arp", got)
	}
}

func TestClassifyBFD(t *testing.T) {
	cp := bfd.ControlPacket{State: bfd.StateUp, DetectMult: 3, MyDisc: 1}
	dg := udp.Datagram{SrcPort: 49152, DstPort: udp.PortBFDControl, Payload: cp.Marshal()}
	raw := ipFrame(ipv4.ProtoUDP, dg.Marshal(srcIP, dstIP))
	if got := Classify(raw); got != ClassBFD {
		t.Errorf("got %s, want bfd", got)
	}
	if len(raw) != 66 {
		t.Errorf("BFD frame = %d bytes, want 66 (Fig. 9)", len(raw))
	}
}

func TestClassifyBGP(t *testing.T) {
	mk := func(payload []byte) []byte {
		seg := tcp.Segment{SrcPort: 179, DstPort: 49999, Flags: tcp.FlagACK | tcp.FlagPSH, Payload: payload}
		return ipFrame(ipv4.ProtoTCP, seg.Marshal(srcIP, dstIP))
	}
	ka := mk(bgp.MarshalKeepalive())
	if got := Classify(ka); got != ClassBGPKeepalive {
		t.Errorf("keepalive classified %s", got)
	}
	if len(ka) != 85 {
		t.Errorf("BGP keepalive frame = %d bytes, want 85 (Fig. 9)", len(ka))
	}
	upd := mk(bgp.MarshalUpdate(bgp.Update{Withdrawn: []netaddr.Prefix{netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 11, 0), 24)}}))
	if got := Classify(upd); got != ClassBGPUpdate {
		t.Errorf("update classified %s", got)
	}
	open := mk(bgp.MarshalOpen(bgp.Open{Version: 4, AS: 64512}))
	if got := Classify(open); got != ClassBGPOther {
		t.Errorf("open classified %s", got)
	}
	ackSeg := tcp.Segment{SrcPort: 49999, DstPort: 179, Flags: tcp.FlagACK}
	ack := ipFrame(ipv4.ProtoTCP, ackSeg.Marshal(srcIP, dstIP))
	if got := Classify(ack); got != ClassTCPAck {
		t.Errorf("pure ack classified %s", got)
	}
	if len(ack) != 66 {
		t.Errorf("pure ACK frame = %d bytes, want 66", len(ack))
	}
}

func TestClassifyGarbage(t *testing.T) {
	if got := Classify([]byte{1, 2, 3}); got != ClassOther {
		t.Errorf("short frame classified %s", got)
	}
	if got := Classify(ethFrame(0x1234, []byte{1})); got != ClassOther {
		t.Errorf("unknown ethertype classified %s", got)
	}
}

func TestTapAndSummary(t *testing.T) {
	sim := simnet.New(1)
	a, b := sim.AddNode("a"), sim.AddNode("b")
	link := sim.Connect(a.AddPort(), b.AddPort())
	var c Capture
	c.Tap(link)
	hello := ethFrame(ethernet.TypeMRMTP, []byte{0x06})
	sim.After(time.Millisecond, func() { a.Port(1).Send(hello) })
	sim.After(2*time.Millisecond, func() { b.Port(1).Send(hello) })
	sim.RunFor(10 * time.Millisecond)
	if len(c.Frames) != 2 {
		t.Fatalf("captured %d frames, want 2", len(c.Frames))
	}
	if c.Frames[0].From != "a:eth1" {
		t.Errorf("From = %s", c.Frames[0].From)
	}
	sum := c.Summary(0, 10*time.Millisecond)
	if sum[ClassMTPHello].Count != 2 || sum[ClassMTPHello].Bytes != 2*len(hello) {
		t.Errorf("summary = %+v", sum)
	}
	// Window filtering.
	if got := c.Summary(0, 1500*time.Microsecond)[ClassMTPHello].Count; got != 1 {
		t.Errorf("windowed count = %d, want 1", got)
	}
	if got := len(c.Filter(ClassMTPHello, 0, 10*time.Millisecond)); got != 2 {
		t.Errorf("Filter = %d frames, want 2", got)
	}
	c.Reset()
	if len(c.Frames) != 0 {
		t.Error("Reset left frames behind")
	}
}

func TestRender(t *testing.T) {
	out := Render(map[Class]ClassStats{
		ClassMTPHello: {Count: 10, Bytes: 150},
		ClassBFD:      {Count: 5, Bytes: 330},
	})
	if !strings.Contains(out, "mrmtp-hello") || !strings.Contains(out, "330") {
		t.Errorf("Render output incomplete:\n%s", out)
	}
	// Larger byte count first.
	if strings.Index(out, "bfd") > strings.Index(out, "mrmtp-hello") {
		t.Error("Render not sorted by bytes")
	}
}
