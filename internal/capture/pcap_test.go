package capture

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/ethernet"
	"repro/internal/netaddr"
	"repro/internal/simnet"
)

func TestPCAPRoundTrip(t *testing.T) {
	sim := simnet.New(1)
	a, b := sim.AddNode("a"), sim.AddNode("b")
	link := sim.Connect(a.AddPort(), b.AddPort())
	var rec Recorder
	rec.Tap(link)
	hello := ethFrame(ethernet.TypeMRMTP, []byte{0x06})
	sim.After(1500*time.Microsecond, func() { a.Port(1).Send(hello) })
	sim.After(3*time.Millisecond, func() { b.Port(1).Send(hello) })
	sim.RunFor(10 * time.Millisecond)
	if rec.Count() != 2 {
		t.Fatalf("recorded %d frames, want 2", rec.Count())
	}

	var buf bytes.Buffer
	if err := rec.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadPCAP(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("read %d frames, want 2", len(frames))
	}
	if !bytes.Equal(frames[0].Raw, hello) {
		t.Error("frame bytes corrupted through pcap")
	}
	if frames[0].At != 1500*time.Microsecond {
		t.Errorf("timestamp = %v, want 1.5ms", frames[0].At)
	}
	// The re-read frame still classifies.
	if got := Classify(frames[0].Raw); got != ClassMTPHello {
		t.Errorf("re-read frame classifies as %s", got)
	}
}

func TestPCAPHeaderShape(t *testing.T) {
	var rec Recorder
	var buf bytes.Buffer
	if err := rec.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("empty capture header = %d bytes, want 24", len(hdr))
	}
	if hdr[0] != 0xd4 || hdr[1] != 0xc3 || hdr[2] != 0xb2 || hdr[3] != 0xa1 {
		t.Errorf("magic bytes % x, want d4c3b2a1 (little-endian)", hdr[:4])
	}
	if hdr[20] != 1 {
		t.Errorf("link type %d, want 1 (Ethernet)", hdr[20])
	}
}

func TestReadPCAPErrors(t *testing.T) {
	if _, err := ReadPCAP(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header accepted")
	}
	bad := make([]byte, 24)
	if _, err := ReadPCAP(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Valid header, truncated record.
	var rec Recorder
	var buf bytes.Buffer
	_ = rec.WritePCAP(&buf)
	buf.Write([]byte{1, 2, 3}) // partial record header
	if _, err := ReadPCAP(&buf); err == nil {
		t.Error("truncated record accepted")
	}
}

func TestPCAPFromHarnessTraffic(t *testing.T) {
	// End to end: record a busy link, export, re-read, classify.
	sim := simnet.New(2)
	a, b := sim.AddNode("a"), sim.AddNode("b")
	link := sim.Connect(a.AddPort(), b.AddPort())
	var rec Recorder
	rec.Tap(link)
	for i := 0; i < 20; i++ {
		i := i
		sim.After(time.Duration(i)*time.Millisecond, func() {
			f := ethernet.Frame{Dst: netaddr.Broadcast, Src: a.Port(1).MAC,
				EtherType: ethernet.TypeMRMTP, Payload: []byte{0x06}}
			a.Port(1).Send(f.Marshal())
		})
	}
	sim.RunFor(time.Second)
	var buf bytes.Buffer
	if err := rec.WritePCAP(&buf); err != nil {
		t.Fatal(err)
	}
	frames, err := ReadPCAP(&buf)
	if err != nil || len(frames) != 20 {
		t.Fatalf("frames=%d err=%v", len(frames), err)
	}
	for i := 1; i < len(frames); i++ {
		if frames[i].At < frames[i-1].At {
			t.Fatal("pcap timestamps out of order")
		}
	}
}
