// Package capture is the reproduction's tshark: it taps simulated links,
// timestamps every frame, and classifies it by protocol so the keep-alive
// overhead experiments (paper Figs. 9 and 10) can be regenerated from
// actual wire traffic rather than from protocol-internal counters.
package capture

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/ethernet"
	"repro/internal/ipv4"
	"repro/internal/simnet"
)

// Class is a frame classification.
type Class string

// Frame classes.
const (
	ClassBGPKeepalive Class = "bgp-keepalive"
	ClassBGPUpdate    Class = "bgp-update"
	ClassBGPOther     Class = "bgp-other" // OPEN, NOTIFICATION
	ClassTCPAck       Class = "tcp-ack"   // bare acknowledgements
	ClassTCPOther     Class = "tcp-other"
	ClassBFD          Class = "bfd"
	ClassARP          Class = "arp"
	ClassIPV4Data     Class = "ipv4-data"
	ClassMTPHello     Class = "mrmtp-hello"
	ClassMTPUpdate    Class = "mrmtp-update"
	ClassMTPData      Class = "mrmtp-data"
	ClassMTPTree      Class = "mrmtp-tree" // advertise/join/offer/accept/ack
	ClassOther        Class = "other"
)

// Classify determines the class of a raw Ethernet frame.
func Classify(raw []byte) Class {
	f, err := ethernet.Unmarshal(raw)
	if err != nil {
		return ClassOther
	}
	switch f.EtherType {
	case ethernet.TypeARP:
		return ClassARP
	case ethernet.TypeMRMTP:
		if len(f.Payload) == 0 {
			return ClassOther
		}
		switch f.Payload[0] {
		case 0x06:
			return ClassMTPHello
		case 0x07:
			return ClassMTPUpdate
		case 0x08:
			return ClassMTPData
		default:
			return ClassMTPTree
		}
	case ethernet.TypeIPv4:
		pkt, err := ipv4.Unmarshal(f.Payload)
		if err != nil {
			return ClassOther
		}
		switch pkt.Header.Protocol {
		case ipv4.ProtoUDP:
			if len(pkt.Payload) >= 4 {
				dport := uint16(pkt.Payload[2])<<8 | uint16(pkt.Payload[3])
				if dport == 3784 {
					return ClassBFD
				}
			}
			return ClassIPV4Data
		case ipv4.ProtoTCP:
			return classifyTCP(pkt.Payload)
		default:
			return ClassIPV4Data
		}
	}
	return ClassOther
}

func classifyTCP(seg []byte) Class {
	if len(seg) < 20 {
		return ClassTCPOther
	}
	sport := uint16(seg[0])<<8 | uint16(seg[1])
	dport := uint16(seg[2])<<8 | uint16(seg[3])
	hlen := int(seg[12]>>4) * 4
	if hlen < 20 || hlen > len(seg) {
		return ClassTCPOther
	}
	payload := seg[hlen:]
	if sport != 179 && dport != 179 {
		return ClassTCPOther
	}
	if len(payload) == 0 {
		return ClassTCPAck
	}
	if len(payload) >= 19 {
		switch payload[18] {
		case 2:
			return ClassBGPUpdate
		case 4:
			return ClassBGPKeepalive
		}
	}
	return ClassBGPOther
}

// Frame is one captured frame.
type Frame struct {
	At    time.Duration
	Link  string // "a:eth1<->b:eth2"
	From  string // transmitting port name
	Len   int
	Class Class
}

// Capture accumulates frames from tapped links.
type Capture struct {
	Frames []Frame
}

// Tap attaches the capture to a link.
func (c *Capture) Tap(l *simnet.Link) {
	name := fmt.Sprintf("%s<->%s", l.A.Name(), l.B.Name())
	l.Tap(func(at time.Duration, from *simnet.Port, raw []byte) {
		c.Frames = append(c.Frames, Frame{
			At:    at,
			Link:  name,
			From:  from.Name(),
			Len:   len(raw),
			Class: Classify(raw),
		})
	})
}

// TapAll attaches the capture to every link in the simulation.
func (c *Capture) TapAll(sim simnet.Engine) {
	for _, l := range sim.Links() {
		c.Tap(l)
	}
}

// Reset clears the captured frames.
func (c *Capture) Reset() { c.Frames = nil }

// Filter returns the frames of a class within [from, to).
func (c *Capture) Filter(class Class, from, to time.Duration) []Frame {
	var out []Frame
	for _, f := range c.Frames {
		if f.Class == class && f.At >= from && f.At < to {
			out = append(out, f)
		}
	}
	return out
}

// ClassStats summarizes one class of traffic.
type ClassStats struct {
	Count int
	Bytes int
}

// Summary aggregates counts and bytes per class within [from, to).
func (c *Capture) Summary(from, to time.Duration) map[Class]ClassStats {
	out := make(map[Class]ClassStats)
	for _, f := range c.Frames {
		if f.At < from || f.At >= to {
			continue
		}
		s := out[f.Class]
		s.Count++
		s.Bytes += f.Len
		out[f.Class] = s
	}
	return out
}

// Render prints a per-class table, largest byte counts first.
func Render(summary map[Class]ClassStats) string {
	type row struct {
		class Class
		s     ClassStats
	}
	rows := make([]row, 0, len(summary))
	for cl, s := range summary {
		rows = append(rows, row{cl, s})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].s.Bytes != rows[j].s.Bytes {
			return rows[i].s.Bytes > rows[j].s.Bytes
		}
		return rows[i].class < rows[j].class
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %10s\n", "class", "frames", "bytes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %8d %10d\n", r.class, r.s.Count, r.s.Bytes)
	}
	return b.String()
}
