package bgp

import (
	"testing"

	"repro/internal/netaddr"
)

func FuzzParseMessage(f *testing.F) {
	f.Add(MarshalKeepalive())
	f.Add(MarshalOpen(Open{Version: 4, AS: 64512, HoldTime: 3}))
	f.Add(MarshalNotification(Notification{Code: NotifCease}))
	f.Add(MarshalUpdate(Update{
		Withdrawn: []netaddr.Prefix{netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 11, 0), 24)},
		ASPath:    []uint16{64512, 64601},
		NextHop:   netaddr.MakeIPv4(172, 16, 0, 1),
		NLRI:      []netaddr.Prefix{netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24)},
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are fine.
		m, err := ParseMessage(data)
		if err != nil {
			return
		}
		// Parsed UPDATEs must re-marshal without panicking.
		if m.Type == TypeUpdate {
			_ = MarshalUpdate(m.Update)
		}
	})
}

func FuzzSplitStream(f *testing.F) {
	stream := append(MarshalKeepalive(), MarshalOpen(Open{Version: 4, AS: 64512})...)
	f.Add(stream, 3)
	f.Add(stream, 20)
	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		// Splitting the buffer anywhere must yield the same messages as
		// feeding it whole (or an error in both paths).
		whole, restW, errW := SplitStream(data)
		if cut < 0 || cut > len(data) {
			return
		}
		m1, rest, err1 := SplitStream(data[:cut])
		if err1 != nil {
			return // a truncation-induced error is acceptable mid-stream
		}
		m2, rest2, err2 := SplitStream(append(rest, data[cut:]...))
		if (err2 == nil) != (errW == nil) {
			t.Fatalf("split changed error outcome: %v vs %v", err2, errW)
		}
		if errW == nil && (len(m1)+len(m2) != len(whole) || len(rest2) != len(restW)) {
			t.Fatalf("split changed message count: %d+%d vs %d", len(m1), len(m2), len(whole))
		}
	})
}
