package bgp

import (
	"fmt"
	"time"

	"repro/internal/ipstack"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/tcp"
)

// SessionState is the condensed BGP FSM state.
type SessionState int

// Session states.
const (
	StateIdle SessionState = iota
	StateConnect
	StateOpenSent
	StateEstablished
)

func (s SessionState) String() string {
	switch s {
	case StateIdle:
		return "Idle"
	case StateConnect:
		return "Connect"
	case StateOpenSent:
		return "OpenSent"
	case StateEstablished:
		return "Established"
	}
	return fmt.Sprintf("SessionState(%d)", int(s))
}

// Peer is one eBGP session.
type Peer struct {
	sp       *Speaker
	Iface    *ipstack.Iface
	LocalIP  netaddr.IPv4
	Neighbor netaddr.IPv4
	RemoteAS uint16
	State    SessionState

	passive      bool
	conn         *tcp.Conn
	recvBuf      []byte
	openReceived bool

	// MsgSent/MsgRecv count BGP messages on this session (the MsgSent /
	// MsgRcvd columns of `show ip bgp summary`).
	MsgSent, MsgRecv uint64
	establishedAt    time.Duration

	holdTimer      *simnet.Timer
	keepaliveTimer *simnet.Timer
	retryTimer     *simnet.Timer
	mraiTimer      *simnet.Timer
	mraiArmed      bool

	// Pending per-prefix announcements under MRAI batching. The value
	// selects advertise (true) or withdraw (false).
	pending map[netaddr.Prefix]bool
	order   []netaddr.Prefix

	// OnDown, when set, is invoked after the session leaves Established
	// (used by the BFD integration tests and the harness).
	OnDown func()
}

func (p *Peer) sim() *simnet.Sim { return p.sp.sim }

// connect starts an active TCP dial toward the neighbor.
func (p *Peer) connect() {
	if p.State != StateIdle || !p.Iface.Usable() {
		return
	}
	p.State = StateConnect
	p.attach(p.sp.Stack.TCP.Dial(p.LocalIP, p.Neighbor, Port))
}

// attach binds a TCP connection (dialed or accepted) to the session.
func (p *Peer) attach(conn *tcp.Conn) {
	if p.conn != nil {
		p.conn.Close()
	}
	p.conn = conn
	p.recvBuf = nil
	p.openReceived = false
	conn.OnData(p.onData)
	conn.OnState(func(st tcp.State) {
		switch st {
		case tcp.StateEstablished:
			p.sendOpen()
		case tcp.StateClosed:
			if p.conn == conn && p.State != StateIdle {
				p.reset(false)
			}
		}
	})
	if conn.State() == tcp.StateEstablished {
		p.sendOpen()
	} else if p.State == StateIdle {
		p.State = StateConnect
	}
}

func (p *Peer) sendOpen() {
	p.State = StateOpenSent
	p.send(MarshalOpen(Open{
		Version:  4,
		AS:       p.sp.Cfg.ASN,
		HoldTime: uint16(p.sp.Cfg.Timers.Hold / time.Second),
		RouterID: p.sp.Cfg.RouterID,
	}))
}

func (p *Peer) send(msg []byte) {
	if p.conn == nil {
		return
	}
	p.MsgSent++
	p.conn.Send(msg)
}

func (p *Peer) onData(data []byte) {
	p.recvBuf = append(p.recvBuf, data...)
	msgs, rest, err := SplitStream(p.recvBuf)
	if err != nil {
		p.reset(true)
		return
	}
	p.recvBuf = append([]byte(nil), rest...)
	for _, raw := range msgs {
		m, err := ParseMessage(raw)
		if err != nil {
			p.reset(true)
			return
		}
		p.handle(m)
	}
}

func (p *Peer) handle(m Parsed) {
	p.MsgRecv++
	p.touchHold()
	switch m.Type {
	case TypeOpen:
		if m.Open.AS != p.RemoteAS || m.Open.Version != 4 {
			p.send(MarshalNotification(Notification{Code: NotifFSMError}))
			p.reset(true)
			return
		}
		p.openReceived = true
		p.send(MarshalKeepalive())
		p.sp.Stats.KeepalivesSent++
		p.maybeEstablish()
	case TypeKeepalive:
		p.sp.Stats.KeepalivesRecv++
		p.maybeEstablish()
	case TypeUpdate:
		if p.State == StateEstablished {
			p.sp.handleUpdate(p, m.Update)
		}
	case TypeNotification:
		p.reset(false)
	}
}

func (p *Peer) maybeEstablish() {
	if p.State == StateEstablished || !p.openReceived {
		return
	}
	p.State = StateEstablished
	p.establishedAt = p.sim().Now()
	p.sp.Stats.SessionsEstablished++
	p.startKeepalive()
	p.touchHold()
	p.sp.syncPeer(p)
}

func (p *Peer) startKeepalive() {
	interval := p.sp.Cfg.Timers.Keepalive
	if p.keepaliveTimer != nil {
		p.keepaliveTimer.Reset(interval)
		return
	}
	p.keepaliveTimer = p.sim().After(interval, func() {
		if p.State != StateEstablished {
			return
		}
		p.send(MarshalKeepalive())
		p.sp.Stats.KeepalivesSent++
		p.keepaliveTimer.Reset(interval)
	})
}

func (p *Peer) touchHold() {
	hold := p.sp.Cfg.Timers.Hold
	if hold == 0 {
		if p.holdTimer != nil {
			p.holdTimer.Stop()
		}
		return
	}
	if p.holdTimer != nil {
		p.holdTimer.Reset(hold)
		return
	}
	p.holdTimer = p.sim().After(hold, func() {
		if p.State == StateEstablished || p.State == StateOpenSent {
			p.send(MarshalNotification(Notification{Code: NotifHoldExpired}))
			p.reset(false)
		}
	})
}

// BFDDown is invoked by the BFD integration when the neighbor's liveness
// session fails: the BGP session drops immediately instead of waiting for
// the hold timer.
func (p *Peer) BFDDown() {
	if p.State != StateIdle {
		p.reset(false)
	}
}

// reset tears the session down, withdraws the peer's routes, and schedules
// a reconnect.
func (p *Peer) reset(notify bool) {
	wasEstablished := p.State == StateEstablished
	if notify && p.conn != nil {
		p.send(MarshalNotification(Notification{Code: NotifCease}))
	}
	if p.conn != nil {
		c := p.conn
		p.conn = nil
		c.Close()
	}
	p.State = StateIdle
	p.openReceived = false
	p.pending = nil
	p.order = nil
	p.mraiArmed = false
	for _, t := range []*simnet.Timer{p.holdTimer, p.keepaliveTimer, p.mraiTimer} {
		if t != nil {
			t.Stop()
		}
	}
	p.sp.Stats.SessionResets++
	if wasEstablished {
		p.sp.peerDown(p)
		if p.OnDown != nil {
			p.OnDown()
		}
	}
	p.scheduleRetry()
}

func (p *Peer) scheduleRetry() {
	if p.passive {
		return // the active side re-dials
	}
	retry := p.sp.Cfg.Timers.ConnectRetry
	if p.retryTimer != nil {
		p.retryTimer.Reset(retry)
		return
	}
	p.retryTimer = p.sim().After(retry, func() {
		if p.State == StateIdle && p.Iface.Usable() {
			p.connect()
		} else if p.State == StateIdle {
			p.scheduleRetry()
		}
	})
}

// queueAdvertise schedules prefix for advertisement under MRAI pacing.
func (p *Peer) queueAdvertise(prefix netaddr.Prefix) { p.queue(prefix, true) }

// queueWithdraw schedules prefix for withdrawal under MRAI pacing.
func (p *Peer) queueWithdraw(prefix netaddr.Prefix) { p.queue(prefix, false) }

func (p *Peer) queue(prefix netaddr.Prefix, announce bool) {
	if p.State != StateEstablished {
		return
	}
	if p.pending == nil {
		p.pending = make(map[netaddr.Prefix]bool)
	}
	if _, queued := p.pending[prefix]; !queued {
		p.order = append(p.order, prefix)
	}
	p.pending[prefix] = announce
	if p.sp.Cfg.Timers.MRAI <= 0 {
		p.flush()
		return
	}
	if !p.mraiArmed {
		// First change goes out immediately; subsequent ones wait for
		// the MinRouteAdvertisementInterval, per RFC 4271 §9.2.1.1.
		p.flush()
		p.mraiArmed = true
		if p.mraiTimer != nil {
			p.mraiTimer.Reset(p.sp.Cfg.Timers.MRAI)
		} else {
			p.mraiTimer = p.sim().After(p.sp.Cfg.Timers.MRAI, func() {
				p.mraiArmed = false
				if len(p.pending) > 0 {
					p.flush()
				}
			})
		}
	}
}

// flush emits one UPDATE per pending announcement and one aggregate
// withdrawal, then clears the queue.
func (p *Peer) flush() {
	if p.State != StateEstablished || len(p.pending) == 0 {
		return
	}
	var withdrawn []netaddr.Prefix
	for _, prefix := range p.order {
		announce, ok := p.pending[prefix]
		if !ok {
			continue
		}
		if !announce {
			withdrawn = append(withdrawn, prefix)
			continue
		}
		path, ok := p.sp.currentExport(prefix)
		if !ok {
			continue
		}
		u := Update{
			ASPath:  p.sp.exportPath(path),
			NextHop: p.LocalIP,
			NLRI:    []netaddr.Prefix{prefix},
		}
		p.sendUpdate(u)
	}
	if len(withdrawn) > 0 {
		p.sendUpdate(Update{Withdrawn: withdrawn})
		p.sp.Stats.WithdrawalsSent++
	}
	p.pending = nil
	p.order = nil
}

func (p *Peer) sendUpdate(u Update) {
	msg := MarshalUpdate(u)
	p.send(msg)
	p.sp.Stats.UpdatesSent++
	p.sp.recorder.ControlMessage(p.sim().Now(), p.sp.Stack.Node.Name, len(msg)+L2Overhead)
}
