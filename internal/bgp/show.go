package bgp

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderSummary prints the speaker's session table in the style of FRR's
// `show ip bgp summary`, the operational view the paper's authors used to
// verify their testbed configuration.
func (s *Speaker) RenderSummary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "BGP router identifier %s, local AS number %d\n", s.Cfg.RouterID, s.Cfg.ASN)
	fmt.Fprintf(&b, "%-16s %8s %12s %10s %10s %10s\n",
		"Neighbor", "AS", "State", "MsgRcvd", "MsgSent", "PfxRcd")
	peers := append([]*Peer(nil), s.peers...)
	sort.Slice(peers, func(i, j int) bool {
		return peers[i].Neighbor.Uint32() < peers[j].Neighbor.Uint32()
	})
	for _, p := range peers {
		pfx := 0
		//simlint:deterministic pure counter; the total is independent of iteration order
		for _, entries := range s.adjIn {
			if _, ok := entries[p.Neighbor]; ok {
				pfx++
			}
		}
		fmt.Fprintf(&b, "%-16s %8d %12s %10d %10d %10d\n",
			p.Neighbor, p.RemoteAS, p.State, p.MsgRecv, p.MsgSent, pfx)
	}
	fmt.Fprintf(&b, "\nTotal number of neighbors %d, established %d\n",
		len(peers), s.EstablishedCount())
	return b.String()
}

// RenderRIB prints the Adj-RIB-In in the style of `show ip bgp`: every
// known path per prefix, best-first.
func (s *Speaker) RenderRIB() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-20s %-16s %s\n", "Network", "Next Hop", "Path")
	prefixes := s.RIB()
	for _, prefix := range prefixes {
		entries := s.adjIn[prefix]
		type row struct {
			nh   string
			path string
			plen int
		}
		var rows []row
		//simlint:deterministic rows are fully sorted by (path length, next hop) before rendering
		for _, e := range entries {
			parts := make([]string, len(e.asPath))
			for i, as := range e.asPath {
				parts[i] = fmt.Sprint(as)
			}
			rows = append(rows, row{e.nextHop.String(), strings.Join(parts, " "), len(e.asPath)})
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].plen != rows[j].plen {
				return rows[i].plen < rows[j].plen
			}
			return rows[i].nh < rows[j].nh
		})
		name := prefix.String()
		for _, r := range rows {
			fmt.Fprintf(&b, "%-20s %-16s %s\n", name, r.nh, r.path)
			name = "" // only the first path repeats the prefix, like FRR
		}
	}
	return b.String()
}

// Uptime reports how long the peer has been established (zero if down).
func (p *Peer) Uptime() time.Duration {
	if p.State != StateEstablished {
		return 0
	}
	return p.sim().Now() - p.establishedAt
}
