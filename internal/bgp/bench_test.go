package bgp

import (
	"testing"

	"repro/internal/netaddr"
)

func benchUpdate() Update {
	return Update{
		ASPath:  []uint16{64512, 64513, 64601},
		NextHop: netaddr.MakeIPv4(172, 16, 0, 1),
		NLRI:    []netaddr.Prefix{netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 11, 0), 24)},
	}
}

func BenchmarkMarshalUpdate(b *testing.B) {
	u := benchUpdate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = MarshalUpdate(u)
	}
}

func BenchmarkParseUpdate(b *testing.B) {
	wire := MarshalUpdate(benchUpdate())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseMessage(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSplitStream(b *testing.B) {
	var stream []byte
	for i := 0; i < 8; i++ {
		stream = append(stream, MarshalKeepalive()...)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := SplitStream(stream); err != nil {
			b.Fatal(err)
		}
	}
}
