package bgp

import (
	"testing"
	"testing/quick"

	"repro/internal/netaddr"
)

func TestKeepaliveWireFormat(t *testing.T) {
	ka := MarshalKeepalive()
	if len(ka) != 19 {
		t.Fatalf("KEEPALIVE = %d bytes, want 19", len(ka))
	}
	// 85 bytes at layer 2 (paper Fig. 9).
	if len(ka)+L2Overhead != 85 {
		t.Errorf("KEEPALIVE L2 frame = %d bytes, want 85", len(ka)+L2Overhead)
	}
	m, err := ParseMessage(ka)
	if err != nil || m.Type != TypeKeepalive {
		t.Fatalf("ParseMessage: %v %v", m, err)
	}
}

func TestOpenRoundTrip(t *testing.T) {
	f := func(as, hold uint16, id netaddr.IPv4) bool {
		in := Open{Version: 4, AS: as, HoldTime: hold, RouterID: id}
		m, err := ParseMessage(MarshalOpen(in))
		return err == nil && m.Type == TypeOpen && m.Open == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	m, err := ParseMessage(MarshalNotification(Notification{Code: NotifHoldExpired, Subcode: 1}))
	if err != nil || m.Type != TypeNotification || m.Notification.Code != NotifHoldExpired {
		t.Fatalf("notification round trip failed: %+v %v", m, err)
	}
}

func prefix(a, b, c, d byte, bits int) netaddr.Prefix {
	return netaddr.MakePrefix(netaddr.MakeIPv4(a, b, c, d), bits)
}

func TestUpdateRoundTrip(t *testing.T) {
	in := Update{
		Withdrawn: []netaddr.Prefix{prefix(192, 168, 11, 0, 24)},
		ASPath:    []uint16{64512, 64513, 64601},
		NextHop:   netaddr.MakeIPv4(172, 16, 0, 1),
		NLRI:      []netaddr.Prefix{prefix(192, 168, 14, 0, 24), prefix(10, 0, 0, 0, 8)},
	}
	m, err := ParseMessage(MarshalUpdate(in))
	if err != nil || m.Type != TypeUpdate {
		t.Fatalf("parse: %v", err)
	}
	u := m.Update
	if len(u.Withdrawn) != 1 || u.Withdrawn[0] != in.Withdrawn[0] {
		t.Errorf("withdrawn = %v", u.Withdrawn)
	}
	if len(u.ASPath) != 3 || u.ASPath[0] != 64512 || u.ASPath[2] != 64601 {
		t.Errorf("as path = %v", u.ASPath)
	}
	if u.NextHop != in.NextHop {
		t.Errorf("next hop = %v", u.NextHop)
	}
	if len(u.NLRI) != 2 || u.NLRI[0] != in.NLRI[0] || u.NLRI[1] != in.NLRI[1] {
		t.Errorf("nlri = %v", u.NLRI)
	}
}

func TestUpdateRoundTripProperty(t *testing.T) {
	f := func(third byte, pathSeed []uint16, withdraw bool) bool {
		if len(pathSeed) > 10 {
			pathSeed = pathSeed[:10]
		}
		var in Update
		if withdraw {
			in.Withdrawn = []netaddr.Prefix{prefix(192, 168, third, 0, 24)}
		} else {
			if len(pathSeed) == 0 {
				pathSeed = []uint16{64512}
			}
			in.ASPath = pathSeed
			in.NextHop = netaddr.MakeIPv4(172, 16, 0, 1)
			in.NLRI = []netaddr.Prefix{prefix(192, 168, third, 0, 24)}
		}
		m, err := ParseMessage(MarshalUpdate(in))
		if err != nil || m.Type != TypeUpdate {
			return false
		}
		if withdraw {
			return len(m.Update.Withdrawn) == 1 && m.Update.Withdrawn[0] == in.Withdrawn[0]
		}
		if len(m.Update.ASPath) != len(in.ASPath) {
			return false
		}
		for i := range in.ASPath {
			if m.Update.ASPath[i] != in.ASPath[i] {
				return false
			}
		}
		return len(m.Update.NLRI) == 1 && m.Update.NLRI[0] == in.NLRI[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseMessage(make([]byte, 5)); err != ErrTruncated {
		t.Errorf("short: %v", err)
	}
	bad := MarshalKeepalive()
	bad[0] = 0
	if _, err := ParseMessage(bad); err != ErrBadMarker {
		t.Errorf("marker: %v", err)
	}
	bad = MarshalKeepalive()
	bad[18] = 99
	if _, err := ParseMessage(bad); err == nil {
		t.Error("unknown type accepted")
	}
	// Length mismatch.
	ka := MarshalKeepalive()
	if _, err := ParseMessage(append(ka, 0)); err != ErrTruncated {
		t.Errorf("length mismatch: %v", err)
	}
}

func TestSplitStream(t *testing.T) {
	a := MarshalKeepalive()
	b := MarshalOpen(Open{Version: 4, AS: 64512})
	stream := append(append([]byte{}, a...), b...)
	// Feed in two arbitrary chunks.
	msgs, rest, err := SplitStream(stream[:25])
	if err != nil || len(msgs) != 1 || len(rest) != 6 {
		t.Fatalf("first chunk: msgs=%d rest=%d err=%v", len(msgs), len(rest), err)
	}
	msgs, rest, err = SplitStream(append(rest, stream[25:]...))
	if err != nil || len(msgs) != 1 || len(rest) != 0 {
		t.Fatalf("second chunk: msgs=%d rest=%d err=%v", len(msgs), len(rest), err)
	}
	m, err := ParseMessage(msgs[0])
	if err != nil || m.Type != TypeOpen || m.Open.AS != 64512 {
		t.Errorf("reassembled OPEN wrong: %+v %v", m, err)
	}
}

func TestSplitStreamRejectsGarbage(t *testing.T) {
	garbage := make([]byte, 40) // zero length field -> malformed
	if _, _, err := SplitStream(garbage); err != ErrMalformed {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestSplitStreamProperty(t *testing.T) {
	// Any split point of a valid stream yields the same messages.
	msgsWire := append(append(append([]byte{}, MarshalKeepalive()...),
		MarshalUpdate(Update{Withdrawn: []netaddr.Prefix{prefix(192, 168, 11, 0, 24)}})...),
		MarshalKeepalive()...)
	f := func(cut uint8) bool {
		c := int(cut) % (len(msgsWire) + 1)
		m1, rest, err := SplitStream(msgsWire[:c])
		if err != nil {
			return false
		}
		m2, rest, err := SplitStream(append(rest, msgsWire[c:]...))
		return err == nil && len(rest) == 0 && len(m1)+len(m2) == 3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
