package bgp

import (
	"testing"
	"time"

	"repro/internal/ipstack"
	"repro/internal/netaddr"
)

func TestWrongASRejected(t *testing.T) {
	// A neighbor whose OPEN carries an unexpected AS must not establish.
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	// Misconfigure: leaf expects 64599 from the spine.
	pa := leaf.stack.Node.AddPort()
	pb := spine.stack.Node.AddPort()
	tn.sim.Connect(pa, pb)
	subnet := netaddr.MakePrefix(netaddr.MakeIPv4(172, 16, 100, 0), 24)
	ia := leaf.stack.AddIface(pa, subnet.Host(2), subnet)
	ib := spine.stack.AddIface(pb, subnet.Host(1), subnet)
	leaf.sp.AddPeer(ia, subnet.Host(1), 64599) // wrong remote-as
	spine.sp.AddPeer(ib, subnet.Host(2), 64601)
	tn.sim.Start()
	tn.sim.RunFor(10 * time.Second)
	if leaf.sp.EstablishedCount() != 0 || spine.sp.EstablishedCount() != 0 {
		t.Errorf("session with mismatched AS established: leaf=%d spine=%d",
			leaf.sp.EstablishedCount(), spine.sp.EstablishedCount())
	}
}

func TestMaxPathsCapsECMP(t *testing.T) {
	// A destination with 3 equal paths but MaxPaths=2 installs only 2.
	tn := newTestNet()
	dst := tn.router("dst", 64602, true, netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24))
	src := tn.router("src", 64601, true)
	src.sp.Cfg.MaxPaths = 2
	for i := 0; i < 3; i++ {
		mid := tn.router(string(rune('a'+i)), 64513, true)
		tn.link(src, mid)
		tn.link(dst, mid)
	}
	tn.sim.Start()
	tn.sim.RunFor(10 * time.Second)
	rack14 := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24)
	r := src.stack.FIB.Get(rack14, ipstack.ProtoBGP)
	if r == nil {
		t.Fatal("no route learned")
	}
	if len(r.NextHops) != 2 {
		t.Errorf("installed %d next hops, want MaxPaths=2", len(r.NextHops))
	}
}

func TestCorruptStreamResetsSession(t *testing.T) {
	// Feed garbage into an established session's stream: the FSM must
	// reset rather than wedge, and then recover on its own.
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(3 * time.Second)
	p := spine.sp.Peers()[0]
	if p.State != StateEstablished {
		t.Fatal("setup failed")
	}
	resets := spine.sp.Stats.SessionResets
	p.onData(make([]byte, 64)) // zero marker: ErrBadMarker territory
	if spine.sp.Stats.SessionResets != resets+1 {
		t.Error("corrupt stream did not reset the session")
	}
	tn.sim.RunFor(30 * time.Second)
	if spine.sp.EstablishedCount() != 1 {
		t.Error("session never recovered after the reset")
	}
}

func TestHoldTimeZeroDisablesHoldTimer(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	leaf.sp.Cfg.Timers.Hold = 0
	spine.sp.Cfg.Timers.Hold = 0
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(3 * time.Second)
	if leaf.sp.EstablishedCount() != 1 {
		t.Fatal("setup failed")
	}
	// Kill the link at the leaf side. With hold disabled and no BFD the
	// spine must keep the stale session indefinitely.
	leaf.stack.Node.Port(1).Fail()
	tn.sim.RunFor(30 * time.Second)
	if spine.sp.EstablishedCount() != 1 {
		t.Error("session dropped despite hold timer being disabled")
	}
}

func TestSessionResetClearsAdjRIBIn(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(3 * time.Second)
	if len(spine.sp.RIB()) != 1 {
		t.Fatal("setup failed")
	}
	leaf.stack.Node.Port(1).Fail()
	tn.sim.RunFor(10 * time.Second)
	if got := len(spine.sp.RIB()); got != 0 {
		t.Errorf("Adj-RIB-In still holds %d prefixes after session death", got)
	}
}
