package bgp

import (
	"testing"
	"time"

	"repro/internal/ipstack"
	"repro/internal/metrics"
	"repro/internal/netaddr"
	"repro/internal/simnet"
)

// rtr bundles a node, stack and speaker for tests.
type rtr struct {
	stack *ipstack.Stack
	sp    *Speaker
}

type testNet struct {
	sim     *simnet.Sim
	log     *metrics.Log
	routers map[string]*rtr
	linkSeq byte
}

func newTestNet() *testNet {
	return &testNet{sim: simnet.New(11), log: &metrics.Log{}, routers: make(map[string]*rtr)}
}

func (tn *testNet) router(name string, asn uint16, ecmp bool, networks ...netaddr.Prefix) *rtr {
	node := tn.sim.AddNode(name)
	stack := ipstack.New(node)
	cfg := Config{
		ASN:      asn,
		RouterID: netaddr.MakeIPv4(10, 0, byte(len(tn.routers)), 1),
		Timers:   DefaultTimers(),
		ECMP:     ecmp,
		Networks: networks,
	}
	r := &rtr{stack: stack, sp: New(stack, cfg, tn.log)}
	tn.routers[name] = r
	// Leaves install their rack subnet as a connected-style route so the
	// FIB has something to forward to; tests don't attach servers.
	tn.routers[name] = r
	return r
}

// link wires a /24 between two routers and declares the BGP peering both
// ways. a gets .2, b gets .1 (b plays the upper tier).
func (tn *testNet) link(a, b *rtr) {
	pa := a.stack.Node.AddPort()
	pb := b.stack.Node.AddPort()
	tn.sim.Connect(pa, pb)
	subnet := netaddr.MakePrefix(netaddr.MakeIPv4(172, 16, tn.linkSeq, 0), 24)
	tn.linkSeq++
	ia := a.stack.AddIface(pa, subnet.Host(2), subnet)
	ib := b.stack.AddIface(pb, subnet.Host(1), subnet)
	a.sp.AddPeer(ia, subnet.Host(1), b.sp.Cfg.ASN)
	b.sp.AddPeer(ib, subnet.Host(2), a.sp.Cfg.ASN)
}

var rack11 = netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 11, 0), 24)

func TestSessionEstablishment(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(2 * time.Second)
	if leaf.sp.EstablishedCount() != 1 || spine.sp.EstablishedCount() != 1 {
		t.Fatalf("sessions: leaf=%d spine=%d, want 1/1", leaf.sp.EstablishedCount(), spine.sp.EstablishedCount())
	}
	// The spine must have learned and installed the rack prefix.
	r := spine.stack.FIB.Get(rack11, ipstack.ProtoBGP)
	if r == nil {
		t.Fatal("spine did not install 192.168.11.0/24")
	}
	if len(r.NextHops) != 1 || r.NextHops[0].Via != leaf.stack.Iface(1).IP {
		t.Errorf("next hop = %+v, want via leaf", r.NextHops)
	}
}

func TestASPathGrowsPerTier(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	top := tn.router("top", 64512, true)
	tn.link(leaf, spine)
	tn.link(spine, top)
	tn.sim.Start()
	tn.sim.RunFor(3 * time.Second)
	entries := top.sp.adjIn[rack11]
	if len(entries) != 1 {
		t.Fatalf("top Adj-RIB-In entries = %d, want 1", len(entries))
	}
	for _, e := range entries {
		if len(e.asPath) != 2 || e.asPath[0] != 64513 || e.asPath[1] != 64601 {
			t.Errorf("AS path at top = %v, want [64513 64601]", e.asPath)
		}
	}
}

func TestSenderSideLoopSuppression(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	top := tn.router("top", 64512, true)
	tn.link(leaf, spine)
	tn.link(spine, top)
	tn.sim.Start()
	tn.sim.RunFor(3 * time.Second)
	// The top spine must not re-advertise the prefix back toward the
	// spine (its AS is on the path), so the spine keeps exactly one path.
	if got := len(spine.sp.adjIn[rack11]); got != 1 {
		t.Errorf("spine has %d paths for the rack prefix, want 1 (no echo from top)", got)
	}
	// And the leaf must never learn its own prefix.
	if len(leaf.sp.adjIn[rack11]) != 0 {
		t.Error("leaf learned its own prefix back")
	}
}

// diamond builds src -- {s1, s2} -- dst and returns the four routers.
func diamond(tn *testNet, ecmp bool) (src, s1, s2, dst *rtr) {
	// Both spines share an ASN, like same-pod spines in the paper's
	// Listing 1 plan; this is what prevents leaf-transit detours.
	src = tn.router("src", 64601, ecmp, rack11)
	s1 = tn.router("s1", 64513, ecmp)
	s2 = tn.router("s2", 64513, ecmp)
	rack14 := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24)
	dst = tn.router("dst", 64602, ecmp, rack14)
	tn.link(src, s1)
	tn.link(src, s2)
	tn.link(dst, s1)
	tn.link(dst, s2)
	return
}

func TestECMPInstallsMultipath(t *testing.T) {
	tn := newTestNet()
	src, _, _, _ := diamond(tn, true)
	tn.sim.Start()
	tn.sim.RunFor(5 * time.Second)
	rack14 := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24)
	r := src.stack.FIB.Get(rack14, ipstack.ProtoBGP)
	if r == nil {
		t.Fatal("src did not learn 192.168.14.0/24")
	}
	if len(r.NextHops) != 2 {
		t.Fatalf("next hops = %d, want 2 (ECMP)", len(r.NextHops))
	}
}

func TestECMPDisabledInstallsSinglePath(t *testing.T) {
	tn := newTestNet()
	src, _, _, _ := diamond(tn, false)
	tn.sim.Start()
	tn.sim.RunFor(5 * time.Second)
	rack14 := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24)
	r := src.stack.FIB.Get(rack14, ipstack.ProtoBGP)
	if r == nil || len(r.NextHops) != 1 {
		t.Fatalf("next hops = %v, want exactly 1", r)
	}
}

func TestLocalPortDownFailsOverImmediately(t *testing.T) {
	tn := newTestNet()
	src, _, _, _ := diamond(tn, true)
	tn.sim.Start()
	tn.sim.RunFor(5 * time.Second)
	rack14 := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24)
	// Fail src's own uplink to s1: fast-external-failover must drop the
	// session and shrink the ECMP group without waiting for hold time.
	src.stack.Node.Port(1).Fail()
	tn.sim.RunFor(50 * time.Millisecond)
	r := src.stack.FIB.Get(rack14, ipstack.ProtoBGP)
	if r == nil || len(r.NextHops) != 1 {
		t.Fatalf("after local port down: route = %+v, want single surviving next hop", r)
	}
}

func TestRemoteFailureDetectedByHoldTimer(t *testing.T) {
	tn := newTestNet()
	src, s1, _, dst := diamond(tn, true)
	tn.sim.Start()
	tn.sim.RunFor(5 * time.Second)
	// Fail s1's port toward dst (dst side keeps carrier): s1 must hold
	// the stale session for the hold time before withdrawing.
	var port *simnet.Port
	for _, p := range s1.sp.Peers() {
		if p.RemoteAS == 64602 {
			port = p.Iface.Port
		}
	}
	_ = dst
	failAt := tn.sim.Now()
	// Fail the *remote* side: dst's interface toward s1 (so s1 is unaware).
	dstPort := port.Peer()
	dstPort.Fail()
	tn.sim.RunFor(500 * time.Millisecond)
	rack14 := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 14, 0), 24)
	if r := s1.stack.FIB.Get(rack14, ipstack.ProtoBGP); r == nil {
		t.Fatal("s1 withdrew before its hold timer could have expired")
	}
	tn.sim.RunFor(4 * time.Second)
	if r := s1.stack.FIB.Get(rack14, ipstack.ProtoBGP); r != nil {
		t.Fatalf("s1 still has the route %v after hold expiry (failure at %v)", r, failAt)
	}
	// src must have been told to drop the path via s1.
	r := src.stack.FIB.Get(rack14, ipstack.ProtoBGP)
	if r == nil || len(r.NextHops) != 1 {
		t.Fatalf("src route after withdrawal = %+v, want 1 next hop via s2", r)
	}
}

func TestWithdrawalsPropagate(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	top := tn.router("top", 64512, true)
	tn.link(leaf, spine)
	tn.link(spine, top)
	tn.sim.Start()
	tn.sim.RunFor(3 * time.Second)
	if top.stack.FIB.Get(rack11, ipstack.ProtoBGP) == nil {
		t.Fatal("setup: top lacks the prefix")
	}
	// Kill the leaf's only uplink (leaf side): spine hold-times out, then
	// withdraws from top.
	leaf.stack.Node.Port(1).Fail()
	tn.sim.RunFor(5 * time.Second)
	if top.stack.FIB.Get(rack11, ipstack.ProtoBGP) != nil {
		t.Error("withdrawal did not reach the top spine")
	}
	if spine.stack.FIB.Get(rack11, ipstack.ProtoBGP) != nil {
		t.Error("spine kept the dead route")
	}
}

func TestKeepalivesFlow(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(10 * time.Second)
	// ~1/s for ~10s on each side, plus the handshake keepalive.
	if leaf.sp.Stats.KeepalivesSent < 8 || spine.sp.Stats.KeepalivesSent < 8 {
		t.Errorf("keepalives sent: leaf=%d spine=%d, want >=8",
			leaf.sp.Stats.KeepalivesSent, spine.sp.Stats.KeepalivesSent)
	}
	if leaf.sp.EstablishedCount() != 1 {
		t.Error("session flapped during idle keepalive exchange")
	}
}

func TestSessionReestablishesAfterRestore(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(2 * time.Second)
	leaf.stack.Node.Port(1).Fail()
	tn.sim.RunFor(10 * time.Second)
	if spine.stack.FIB.Get(rack11, ipstack.ProtoBGP) != nil {
		t.Fatal("route survived the outage")
	}
	leaf.stack.Node.Port(1).Restore()
	tn.sim.RunFor(15 * time.Second)
	if leaf.sp.EstablishedCount() != 1 {
		t.Fatal("session did not come back after restore")
	}
	if spine.stack.FIB.Get(rack11, ipstack.ProtoBGP) == nil {
		t.Error("route not re-learned after restore")
	}
}

func TestControlMessagesRecorded(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(2 * time.Second)
	a := tn.log.Analyze(0)
	if a.ControlMessages == 0 || a.ControlBytes == 0 {
		t.Errorf("no control messages recorded: %+v", a)
	}
	// Every UPDATE costs at least header+L2 overhead on the wire.
	if a.ControlBytes < a.ControlMessages*(HeaderLen+L2Overhead) {
		t.Errorf("control bytes %d too small for %d messages", a.ControlBytes, a.ControlMessages)
	}
}

func TestMRAIBatchesUpdates(t *testing.T) {
	// With a large MRAI, a second change during the interval must not
	// produce an immediate second UPDATE.
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	leaf.sp.Cfg.Timers.MRAI = 30 * time.Second
	spine.sp.Cfg.Timers.MRAI = 30 * time.Second
	tn.sim.Start()
	// Let the initial table sync's MRAI window drain first.
	tn.sim.RunFor(31 * time.Second)
	sent := leaf.sp.Stats.UpdatesSent
	// Trigger a change: add a second local network and re-advertise.
	rack12 := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 12, 0), 24)
	leaf.sp.Cfg.Networks = append(leaf.sp.Cfg.Networks, rack12)
	for _, p := range leaf.sp.Peers() {
		p.queueAdvertise(rack12)
	}
	tn.sim.RunFor(time.Second)
	first := leaf.sp.Stats.UpdatesSent
	if first == sent {
		t.Fatal("first change was not sent promptly")
	}
	rack13 := netaddr.MakePrefix(netaddr.MakeIPv4(192, 168, 13, 0), 24)
	leaf.sp.Cfg.Networks = append(leaf.sp.Cfg.Networks, rack13)
	for _, p := range leaf.sp.Peers() {
		p.queueAdvertise(rack13)
	}
	tn.sim.RunFor(5 * time.Second) // well under the 30s MRAI
	if leaf.sp.Stats.UpdatesSent != first {
		t.Errorf("second change escaped MRAI pacing: %d -> %d", first, leaf.sp.Stats.UpdatesSent)
	}
	tn.sim.RunFor(30 * time.Second)
	if leaf.sp.Stats.UpdatesSent == first {
		t.Error("queued change never flushed after MRAI expiry")
	}
}
