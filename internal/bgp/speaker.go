package bgp

import (
	"sort"
	"time"

	"repro/internal/invariant"
	"repro/internal/ipstack"
	"repro/internal/metrics"
	"repro/internal/netaddr"
	"repro/internal/simnet"
	"repro/internal/tcp"
)

// Timers groups the configurable BGP intervals. The paper runs
// `timers bgp 1 3` (keepalive 1 s, hold 3 s) and FRR's datacenter profile,
// whose MRAI is zero.
type Timers struct {
	Keepalive    time.Duration
	Hold         time.Duration
	MRAI         time.Duration // minimum interval between UPDATE bursts per peer
	ConnectRetry time.Duration
}

// DefaultTimers returns the paper's configuration.
func DefaultTimers() Timers {
	return Timers{
		Keepalive:    1 * time.Second,
		Hold:         3 * time.Second,
		MRAI:         0,
		ConnectRetry: 2 * time.Second,
	}
}

// Config configures one BGP speaker.
type Config struct {
	ASN      uint16
	RouterID netaddr.IPv4
	Timers   Timers
	// ECMP enables multipath installation (the paper's "BGP with ECMP").
	ECMP     bool
	MaxPaths int
	// DisableFastFailover keeps sessions up across a local carrier loss
	// until the hold timer expires, like FRR with
	// `no bgp fast-external-failover`. Default off: interface tracking
	// drops the session immediately, which is what the paper measures.
	DisableFastFailover bool
	// Networks are locally originated prefixes (the leaf's rack subnet).
	Networks []netaddr.Prefix
}

// pathEntry is an Adj-RIB-In record.
type pathEntry struct {
	peer    *Peer
	asPath  []uint16
	nextHop netaddr.IPv4
}

// advState tracks what was last advertised for a prefix and to whom.
type advState struct {
	path   []uint16 // path as advertised (without our prepended ASN)
	sentTo map[netaddr.IPv4]bool
}

// Speaker is a BGP routing daemon bound to one router's IP stack.
type Speaker struct {
	Stack *ipstack.Stack
	Cfg   Config

	sim      *simnet.Sim
	peers    []*Peer
	byIP     map[netaddr.IPv4]*Peer // by neighbor address
	adjIn    map[netaddr.Prefix]map[netaddr.IPv4]pathEntry
	adv      map[netaddr.Prefix]*advState
	recorder metrics.Recorder

	// Stats counts protocol activity for the experiments.
	Stats struct {
		UpdatesSent     uint64
		UpdatesRecv     uint64
		KeepalivesSent  uint64
		KeepalivesRecv  uint64
		WithdrawalsSent uint64
		SessionResets   uint64
		// SessionsEstablished counts transitions into Established,
		// including re-establishments after a reset — with SessionResets
		// it exposes per-flap session churn under chaos campaigns.
		SessionsEstablished uint64
	}
}

// New creates a speaker on the stack and hooks interface events. The
// recorder may be nil.
func New(stack *ipstack.Stack, cfg Config, rec metrics.Recorder) *Speaker {
	if cfg.MaxPaths == 0 {
		cfg.MaxPaths = 8
	}
	if rec == nil {
		rec = metrics.Nop{}
	}
	s := &Speaker{
		Stack:    stack,
		Cfg:      cfg,
		sim:      stack.Node.Sim,
		byIP:     make(map[netaddr.IPv4]*Peer),
		adjIn:    make(map[netaddr.Prefix]map[netaddr.IPv4]pathEntry),
		adv:      make(map[netaddr.Prefix]*advState),
		recorder: rec,
	}
	stack.OnPortDown = s.portDown
	stack.OnPortUp = s.portUp
	stack.OnStart = s.start
	stack.TCP.Listen(Port, s.accept)
	return s
}

// AddPeer declares an eBGP neighbor reachable through iface. Like FRR's
// `neighbor <ip> remote-as <asn>`.
func (s *Speaker) AddPeer(iface *ipstack.Iface, neighbor netaddr.IPv4, remoteAS uint16) *Peer {
	p := &Peer{
		sp:       s,
		Iface:    iface,
		LocalIP:  iface.IP,
		Neighbor: neighbor,
		RemoteAS: remoteAS,
		// Deterministic collision avoidance: the numerically lower
		// address initiates the TCP connection, the higher one listens.
		passive: iface.IP.Uint32() > neighbor.Uint32(),
	}
	s.peers = append(s.peers, p)
	s.byIP[neighbor] = p
	return p
}

// Peers returns the speaker's neighbors.
func (s *Speaker) Peers() []*Peer { return s.peers }

// EstablishedCount reports how many sessions are up.
func (s *Speaker) EstablishedCount() int {
	n := 0
	for _, p := range s.peers {
		if p.State == StateEstablished {
			n++
		}
	}
	return n
}

func (s *Speaker) start() {
	for _, p := range s.peers {
		if !p.passive {
			p.connect()
		}
	}
}

func (s *Speaker) accept(conn *tcp.Conn) {
	p := s.byIP[conn.RemoteAddr()]
	if p == nil || !p.passive {
		conn.Close()
		return
	}
	p.attach(conn)
}

func (s *Speaker) portDown(port *simnet.Port) {
	// fast-external-failover: sessions over the dead interface drop
	// immediately, as FRR does on a netlink link-down event.
	if s.Cfg.DisableFastFailover {
		return // the hold timer will notice eventually
	}
	for _, p := range s.peers {
		if p.Iface.Port == port && p.State != StateIdle {
			p.reset(false)
		}
	}
}

func (s *Speaker) portUp(port *simnet.Port) {
	for _, p := range s.peers {
		if p.Iface.Port == port && p.State == StateIdle && !p.passive {
			p.connect()
		}
	}
}

// originateLocal seeds the Adj-RIB-Out with the speaker's own networks.
// Called once a session is ready; local networks always win best-path.
func (s *Speaker) decide(prefix netaddr.Prefix) {
	if s.isLocalNetwork(prefix) {
		return // local origination never changes
	}
	entries := s.adjIn[prefix]

	// Best-path: shortest AS path, then lowest neighbor address.
	var best []pathEntry
	bestLen := -1
	//simlint:deterministic every minimum-length path is collected whatever the encounter order; the set is sorted by neighbor below
	for _, e := range entries {
		if bestLen < 0 || len(e.asPath) < bestLen {
			best = best[:0]
			best = append(best, e)
			bestLen = len(e.asPath)
		} else if len(e.asPath) == bestLen {
			best = append(best, e)
		}
	}
	sort.Slice(best, func(i, j int) bool {
		return best[i].nextHop.Uint32() < best[j].nextHop.Uint32()
	})

	// Install the FIB entry (multipath if ECMP).
	changed := false
	if len(best) == 0 {
		if s.Stack.FIB.Remove(prefix, ipstack.ProtoBGP) {
			changed = true
		}
	} else {
		n := len(best)
		if !s.Cfg.ECMP {
			n = 1
		} else if n > s.Cfg.MaxPaths {
			n = s.Cfg.MaxPaths
		}
		nhs := make([]ipstack.NextHop, 0, n)
		for _, e := range best[:n] {
			nhs = append(nhs, ipstack.NextHop{Via: e.nextHop, Iface: e.peer.Iface})
		}
		r := ipstack.Route{Prefix: prefix, NextHops: nhs, Proto: ipstack.ProtoBGP, Metric: 20}
		if !sameRoute(s.Stack.FIB.Get(prefix, ipstack.ProtoBGP), r) {
			s.Stack.FIB.Replace(r)
			changed = true
		}
	}
	if changed {
		s.recorder.RouteUpdate(s.sim.Now(), s.Stack.Node.Name)
	}

	// Re-advertise if the exported path changed.
	if len(best) == 0 {
		s.withdraw(prefix)
	} else {
		s.advertise(prefix, best[0].asPath)
	}
	if invariant.Enabled {
		s.checkFIB(prefix)
	}
}

func sameRoute(a *ipstack.Route, b ipstack.Route) bool {
	if a == nil || len(a.NextHops) != len(b.NextHops) || a.Metric != b.Metric {
		return false
	}
	for i := range a.NextHops {
		if a.NextHops[i].Via != b.NextHops[i].Via || a.NextHops[i].Iface != b.NextHops[i].Iface {
			return false
		}
	}
	return true
}

func (s *Speaker) isLocalNetwork(p netaddr.Prefix) bool {
	for _, n := range s.Cfg.Networks {
		if n == p {
			return true
		}
	}
	return false
}

func pathsEqual(a, b []uint16) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// advertise exports prefix with the given (un-prepended) path to every
// eligible peer, if it differs from what that peer last heard.
func (s *Speaker) advertise(prefix netaddr.Prefix, path []uint16) {
	st := s.adv[prefix]
	if st == nil {
		st = &advState{sentTo: make(map[netaddr.IPv4]bool)}
		s.adv[prefix] = st
	}
	pathChanged := !pathsEqual(st.path, path)
	st.path = append([]uint16(nil), path...)
	for _, p := range s.peers {
		if p.State != StateEstablished {
			continue
		}
		if !s.exportAllowed(p, path) {
			// The peer's AS sits in the path; if it previously heard
			// this prefix from us, withdraw it.
			if st.sentTo[p.Neighbor] {
				p.queueWithdraw(prefix)
				st.sentTo[p.Neighbor] = false
			}
			continue
		}
		if pathChanged || !st.sentTo[p.Neighbor] {
			p.queueAdvertise(prefix)
			st.sentTo[p.Neighbor] = true
		}
	}
}

// withdraw retracts prefix from every peer that heard it.
func (s *Speaker) withdraw(prefix netaddr.Prefix) {
	st := s.adv[prefix]
	if st == nil {
		return
	}
	for _, p := range s.peers {
		if st.sentTo[p.Neighbor] && p.State == StateEstablished {
			p.queueWithdraw(prefix)
		}
		st.sentTo[p.Neighbor] = false
	}
	delete(s.adv, prefix)
}

// exportAllowed implements sender-side AS-path loop suppression: never
// offer a peer a path already containing its AS (it would reject it
// anyway; FRR's `as-path loop-detection` behaviour on eBGP fabrics).
func (s *Speaker) exportAllowed(p *Peer, path []uint16) bool {
	for _, as := range path {
		if as == p.RemoteAS {
			return false
		}
	}
	return true
}

// exportPath builds the path to put on the wire toward a peer.
func (s *Speaker) exportPath(path []uint16) []uint16 {
	out := make([]uint16, 0, len(path)+1)
	out = append(out, s.Cfg.ASN)
	return append(out, path...)
}

// currentExport returns the path we advertise for prefix, or nil if none.
func (s *Speaker) currentExport(prefix netaddr.Prefix) ([]uint16, bool) {
	if s.isLocalNetwork(prefix) {
		return nil, true // originate with empty path (prepended at send)
	}
	if st := s.adv[prefix]; st != nil {
		return st.path, true
	}
	return nil, false
}

// syncPeer pushes the full table to a newly established peer, in prefix
// order: the advertisement sequence lands on the wire, so it must not
// inherit map iteration order.
func (s *Speaker) syncPeer(p *Peer) {
	for _, n := range s.Cfg.Networks {
		p.queueAdvertise(n)
	}
	prefixes := make([]netaddr.Prefix, 0, len(s.adv))
	//simlint:deterministic key collection only; sortPrefixes orders the slice before any advertisement is queued
	for prefix := range s.adv {
		prefixes = append(prefixes, prefix)
	}
	sortPrefixes(prefixes)
	for _, prefix := range prefixes {
		st := s.adv[prefix]
		if s.exportAllowed(p, st.path) {
			p.queueAdvertise(prefix)
			st.sentTo[p.Neighbor] = true
		}
	}
}

// sortPrefixes orders prefixes by address, then mask length — the canonical
// iteration order wherever a per-prefix action emits protocol messages.
func sortPrefixes(prefixes []netaddr.Prefix) {
	sort.Slice(prefixes, func(i, j int) bool {
		if prefixes[i].IP != prefixes[j].IP {
			return prefixes[i].IP.Uint32() < prefixes[j].IP.Uint32()
		}
		return prefixes[i].Bits < prefixes[j].Bits
	})
}

// handleUpdate processes a received UPDATE from peer p.
func (s *Speaker) handleUpdate(p *Peer, u Update) {
	s.Stats.UpdatesRecv++
	dirty := make(map[netaddr.Prefix]bool)
	for _, w := range u.Withdrawn {
		if entries := s.adjIn[w]; entries != nil {
			if _, had := entries[p.Neighbor]; had {
				delete(entries, p.Neighbor)
				dirty[w] = true
			}
		}
	}
	if len(u.NLRI) > 0 && !asPathContains(u.ASPath, s.Cfg.ASN) {
		for _, prefix := range u.NLRI {
			entries := s.adjIn[prefix]
			if entries == nil {
				entries = make(map[netaddr.IPv4]pathEntry)
				s.adjIn[prefix] = entries
			}
			entries[p.Neighbor] = pathEntry{peer: p, asPath: u.ASPath, nextHop: p.Neighbor}
			dirty[prefix] = true
		}
	}
	// Decide in prefix order: decisions can queue UPDATEs, and their wire
	// order must be a function of the input, not of map iteration.
	changed := make([]netaddr.Prefix, 0, len(dirty))
	//simlint:deterministic key collection only; sortPrefixes orders the slice before decisions run
	for prefix := range dirty {
		changed = append(changed, prefix)
	}
	sortPrefixes(changed)
	for _, prefix := range changed {
		s.decide(prefix)
	}
}

func asPathContains(path []uint16, as uint16) bool {
	for _, a := range path {
		if a == as {
			return true
		}
	}
	return false
}

// peerDown clears a dead peer's routes and reconverges.
func (s *Speaker) peerDown(p *Peer) {
	var dirty []netaddr.Prefix
	//simlint:deterministic per-prefix deletions are independent; the dirty list is sorted before any decision runs
	for prefix, entries := range s.adjIn {
		if _, had := entries[p.Neighbor]; had {
			delete(entries, p.Neighbor)
			dirty = append(dirty, prefix)
		}
	}
	// Forget what we sent them; a future session gets a full re-sync.
	//simlint:deterministic clears one per-peer flag per entry; no ordering escapes
	for _, st := range s.adv {
		st.sentTo[p.Neighbor] = false
	}
	sortPrefixes(dirty)
	for _, prefix := range dirty {
		s.decide(prefix)
	}
}

// RIB returns the prefixes with at least one Adj-RIB-In path (testing aid).
func (s *Speaker) RIB() []netaddr.Prefix {
	var out []netaddr.Prefix
	for prefix, entries := range s.adjIn {
		if len(entries) > 0 {
			out = append(out, prefix)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP.Uint32() < out[j].IP.Uint32() })
	return out
}
