// Package bgp implements the eBGP-for-datacenters baseline of the paper:
// RFC 4271 message formats and session machinery configured per RFC 7938
// ("Use of BGP for Routing in Large-Scale Data Centers"), with ECMP
// multipath and optional BFD-driven failover. It is the protocol suite the
// paper compares MR-MTP against, so fidelity priorities follow the
// experiments: real wire formats (byte-accurate overhead), real timer
// semantics (keepalive/hold, MRAI), real dissemination behaviour
// (UPDATE/withdraw propagation and AS-path loop prevention).
package bgp

import (
	"errors"
	"fmt"

	"repro/internal/netaddr"
)

// Port is the well-known BGP TCP port.
const Port = 179

// Message types (RFC 4271 §4.1).
const (
	TypeOpen         byte = 1
	TypeUpdate       byte = 2
	TypeNotification byte = 3
	TypeKeepalive    byte = 4
)

// HeaderLen is the fixed message header size: 16-byte marker, 2-byte
// length, 1-byte type. A KEEPALIVE is exactly this long (19 bytes).
const HeaderLen = 19

// MaxMessageLen bounds any BGP message (RFC 4271).
const MaxMessageLen = 4096

// Wire overhead of one BGP message at layer 2: Ethernet (14) + IPv4 (20) +
// TCP with timestamps (32). A KEEPALIVE is 19+66 = 85 bytes on the wire,
// the number visible in the paper's Fig. 9 capture.
const L2Overhead = 14 + 20 + 32

var (
	// ErrTruncated reports an incomplete message.
	ErrTruncated = errors.New("bgp: truncated message")
	// ErrBadMarker reports a corrupted sync marker.
	ErrBadMarker = errors.New("bgp: bad marker")
	// ErrMalformed reports an otherwise undecodable message.
	ErrMalformed = errors.New("bgp: malformed message")
)

// Open is the OPEN message body (RFC 4271 §4.2).
type Open struct {
	Version  byte
	AS       uint16
	HoldTime uint16 // seconds
	RouterID netaddr.IPv4
}

// Update is the UPDATE message body (RFC 4271 §4.3). Exactly one path
// (attributes + NLRI set) or a pure withdrawal per message, which is how
// FRR emits them for distinct prefixes sharing attributes.
type Update struct {
	Withdrawn []netaddr.Prefix
	// Path attributes; meaningful only when NLRI is non-empty.
	Origin  byte // 0=IGP
	ASPath  []uint16
	NextHop netaddr.IPv4
	NLRI    []netaddr.Prefix
}

// Notification is the NOTIFICATION message body.
type Notification struct {
	Code, Subcode byte
}

// Notification error codes used here.
const (
	NotifCease       byte = 6
	NotifHoldExpired byte = 4
	NotifFSMError    byte = 5
)

// marshalHeader prepends the 19-byte header to a body.
func marshalHeader(msgType byte, body []byte) []byte {
	msg := make([]byte, HeaderLen+len(body))
	for i := 0; i < 16; i++ {
		msg[i] = 0xff
	}
	l := uint16(len(msg))
	msg[16] = byte(l >> 8)
	msg[17] = byte(l)
	msg[18] = msgType
	copy(msg[HeaderLen:], body)
	return msg
}

// MarshalOpen renders an OPEN message.
func MarshalOpen(o Open) []byte {
	body := make([]byte, 10)
	body[0] = o.Version
	body[1] = byte(o.AS >> 8)
	body[2] = byte(o.AS)
	body[3] = byte(o.HoldTime >> 8)
	body[4] = byte(o.HoldTime)
	copy(body[5:9], o.RouterID[:])
	body[9] = 0 // no optional parameters
	return marshalHeader(TypeOpen, body)
}

// MarshalKeepalive renders the 19-byte KEEPALIVE.
func MarshalKeepalive() []byte { return marshalHeader(TypeKeepalive, nil) }

// MarshalNotification renders a NOTIFICATION message.
func MarshalNotification(n Notification) []byte {
	return marshalHeader(TypeNotification, []byte{n.Code, n.Subcode})
}

// prefixWire renders a prefix in the packed (len, truncated-address) NLRI
// encoding.
func prefixWire(p netaddr.Prefix) []byte {
	nbytes := (p.Bits + 7) / 8
	out := make([]byte, 1+nbytes)
	out[0] = byte(p.Bits)
	copy(out[1:], p.IP[:nbytes])
	return out
}

func parsePrefixes(b []byte) ([]netaddr.Prefix, error) {
	var out []netaddr.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		if bits > 32 {
			return nil, ErrMalformed
		}
		nbytes := (bits + 7) / 8
		if len(b) < 1+nbytes {
			return nil, ErrMalformed
		}
		var ip netaddr.IPv4
		copy(ip[:], b[1:1+nbytes])
		out = append(out, netaddr.MakePrefix(ip, bits))
		b = b[1+nbytes:]
	}
	return out, nil
}

// Path attribute type codes.
const (
	attrOrigin  byte = 1
	attrASPath  byte = 2
	attrNextHop byte = 3
)

// MarshalUpdate renders an UPDATE message.
func MarshalUpdate(u Update) []byte {
	var withdrawn []byte
	for _, p := range u.Withdrawn {
		withdrawn = append(withdrawn, prefixWire(p)...)
	}
	var attrs []byte
	if len(u.NLRI) > 0 {
		// ORIGIN: flags 0x40 (well-known transitive), len 1.
		attrs = append(attrs, 0x40, attrOrigin, 1, u.Origin)
		// AS_PATH: one AS_SEQUENCE segment.
		pathLen := 2 + 2*len(u.ASPath)
		attrs = append(attrs, 0x40, attrASPath, byte(pathLen), 2, byte(len(u.ASPath)))
		for _, as := range u.ASPath {
			attrs = append(attrs, byte(as>>8), byte(as))
		}
		// NEXT_HOP.
		attrs = append(attrs, 0x40, attrNextHop, 4)
		attrs = append(attrs, u.NextHop[:]...)
	}
	body := make([]byte, 0, 4+len(withdrawn)+len(attrs)+8)
	body = append(body, byte(len(withdrawn)>>8), byte(len(withdrawn)))
	body = append(body, withdrawn...)
	body = append(body, byte(len(attrs)>>8), byte(len(attrs)))
	body = append(body, attrs...)
	for _, p := range u.NLRI {
		body = append(body, prefixWire(p)...)
	}
	return marshalHeader(TypeUpdate, body)
}

// Parsed is a decoded BGP message.
type Parsed struct {
	Type         byte
	Open         Open
	Update       Update
	Notification Notification
}

// ParseMessage decodes one complete wire message (header included).
func ParseMessage(msg []byte) (Parsed, error) {
	if len(msg) < HeaderLen {
		return Parsed{}, ErrTruncated
	}
	for i := 0; i < 16; i++ {
		if msg[i] != 0xff {
			return Parsed{}, ErrBadMarker
		}
	}
	l := int(uint16(msg[16])<<8 | uint16(msg[17]))
	if l != len(msg) || l > MaxMessageLen {
		return Parsed{}, ErrTruncated
	}
	p := Parsed{Type: msg[18]}
	body := msg[HeaderLen:]
	switch p.Type {
	case TypeOpen:
		if len(body) < 10 {
			return Parsed{}, ErrMalformed
		}
		p.Open.Version = body[0]
		p.Open.AS = uint16(body[1])<<8 | uint16(body[2])
		p.Open.HoldTime = uint16(body[3])<<8 | uint16(body[4])
		copy(p.Open.RouterID[:], body[5:9])
	case TypeKeepalive:
		if len(body) != 0 {
			return Parsed{}, ErrMalformed
		}
	case TypeNotification:
		if len(body) < 2 {
			return Parsed{}, ErrMalformed
		}
		p.Notification = Notification{Code: body[0], Subcode: body[1]}
	case TypeUpdate:
		u, err := parseUpdate(body)
		if err != nil {
			return Parsed{}, err
		}
		p.Update = u
	default:
		return Parsed{}, fmt.Errorf("bgp: unknown message type %d", p.Type)
	}
	return p, nil
}

func parseUpdate(body []byte) (Update, error) {
	var u Update
	if len(body) < 2 {
		return u, ErrMalformed
	}
	wlen := int(uint16(body[0])<<8 | uint16(body[1]))
	body = body[2:]
	if len(body) < wlen {
		return u, ErrMalformed
	}
	var err error
	if u.Withdrawn, err = parsePrefixes(body[:wlen]); err != nil {
		return u, err
	}
	body = body[wlen:]
	if len(body) < 2 {
		return u, ErrMalformed
	}
	alen := int(uint16(body[0])<<8 | uint16(body[1]))
	body = body[2:]
	if len(body) < alen {
		return u, ErrMalformed
	}
	attrs := body[:alen]
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return u, ErrMalformed
		}
		flags, code := attrs[0], attrs[1]
		var vlen int
		var val []byte
		if flags&0x10 != 0 { // extended length
			if len(attrs) < 4 {
				return u, ErrMalformed
			}
			vlen = int(uint16(attrs[2])<<8 | uint16(attrs[3]))
			if len(attrs) < 4+vlen {
				return u, ErrMalformed
			}
			val = attrs[4 : 4+vlen]
			attrs = attrs[4+vlen:]
		} else {
			vlen = int(attrs[2])
			if len(attrs) < 3+vlen {
				return u, ErrMalformed
			}
			val = attrs[3 : 3+vlen]
			attrs = attrs[3+vlen:]
		}
		switch code {
		case attrOrigin:
			if len(val) != 1 {
				return u, ErrMalformed
			}
			u.Origin = val[0]
		case attrASPath:
			if len(val) < 2 || val[0] != 2 || len(val) != 2+2*int(val[1]) {
				return u, ErrMalformed
			}
			for i := 0; i < int(val[1]); i++ {
				u.ASPath = append(u.ASPath, uint16(val[2+2*i])<<8|uint16(val[3+2*i]))
			}
		case attrNextHop:
			if len(val) != 4 {
				return u, ErrMalformed
			}
			copy(u.NextHop[:], val)
		}
	}
	if u.NLRI, err = parsePrefixes(body[alen:]); err != nil {
		return u, err
	}
	return u, nil
}

// SplitStream extracts complete messages from a TCP byte stream, returning
// the parsed messages and the unconsumed tail.
func SplitStream(buf []byte) (msgs [][]byte, rest []byte, err error) {
	for {
		if len(buf) < HeaderLen {
			return msgs, buf, nil
		}
		l := int(uint16(buf[16])<<8 | uint16(buf[17]))
		if l < HeaderLen || l > MaxMessageLen {
			return msgs, buf, ErrMalformed
		}
		if len(buf) < l {
			return msgs, buf, nil
		}
		msgs = append(msgs, buf[:l])
		buf = buf[l:]
	}
}
