package bgp

import (
	"strings"
	"testing"
	"time"
)

func TestRenderSummary(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(5 * time.Second)
	out := spine.sp.RenderSummary()
	for _, want := range []string{
		"local AS number 64513",
		"Established",
		"64601",
		"established 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Message counters move.
	p := spine.sp.Peers()[0]
	if p.MsgSent == 0 || p.MsgRecv == 0 {
		t.Errorf("message counters: sent=%d recv=%d", p.MsgSent, p.MsgRecv)
	}
	if p.Uptime() <= 0 {
		t.Errorf("uptime = %v, want > 0", p.Uptime())
	}
}

func TestRenderSummaryDownSession(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	tn.link(leaf, spine)
	tn.sim.Start()
	tn.sim.RunFor(2 * time.Second)
	leaf.stack.Node.Port(1).Fail()
	tn.sim.RunFor(5 * time.Second)
	out := spine.sp.RenderSummary()
	if !strings.Contains(out, "established 0") {
		t.Errorf("summary should show the dead session:\n%s", out)
	}
	if spine.sp.Peers()[0].Uptime() != 0 {
		t.Error("down peer reports nonzero uptime")
	}
}

func TestRenderRIB(t *testing.T) {
	tn := newTestNet()
	leaf := tn.router("leaf", 64601, true, rack11)
	spine := tn.router("spine", 64513, true)
	top := tn.router("top", 64512, true)
	tn.link(leaf, spine)
	tn.link(spine, top)
	tn.sim.Start()
	tn.sim.RunFor(5 * time.Second)
	out := top.sp.RenderRIB()
	if !strings.Contains(out, "192.168.11.0/24") {
		t.Errorf("RIB missing prefix:\n%s", out)
	}
	if !strings.Contains(out, "64513 64601") {
		t.Errorf("RIB missing AS path:\n%s", out)
	}
	_ = leaf
}
