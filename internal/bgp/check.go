package bgp

import (
	"repro/internal/invariant"
	"repro/internal/ipstack"
	"repro/internal/netaddr"
)

// checkFIB validates the FIB entry decide just recomputed for prefix.
// Callers guard with invariant.Enabled. The invariants:
//
//   - a prefix with no remaining paths keeps no BGP route (withdrawals
//     must not strand forwarding state);
//   - a prefix with paths has a BGP route whose next hops each carry a
//     non-nil interface, appear at most once, and correspond to a path
//     some peer actually advertised.
func (s *Speaker) checkFIB(prefix netaddr.Prefix) {
	if s.isLocalNetwork(prefix) {
		return
	}
	name := s.Stack.Node.Name
	route := s.Stack.FIB.Get(prefix, ipstack.ProtoBGP)
	entries := s.adjIn[prefix]
	if len(entries) == 0 {
		invariant.Assertf(route == nil,
			"bgp %s: %s has no paths but keeps a BGP FIB entry", name, prefix)
		return
	}
	invariant.Assertf(route != nil,
		"bgp %s: %s has %d paths but no BGP FIB entry", name, prefix, len(entries))
	if route == nil {
		return
	}
	invariant.Assertf(len(route.NextHops) > 0,
		"bgp %s: BGP route for %s has no next hops", name, prefix)
	seen := make(map[netaddr.IPv4]bool, len(route.NextHops))
	for _, nh := range route.NextHops {
		invariant.Assertf(nh.Iface != nil,
			"bgp %s: next hop %s for %s has a nil interface", name, nh.Via, prefix)
		invariant.Assertf(!seen[nh.Via],
			"bgp %s: next hop %s appears twice for %s", name, nh.Via, prefix)
		seen[nh.Via] = true
		found := false
		//simlint:deterministic membership scan; no ordering escapes
		for _, e := range entries {
			if e.nextHop == nh.Via {
				found = true
				break
			}
		}
		invariant.Assertf(found,
			"bgp %s: next hop %s for %s matches no advertised path", name, nh.Via, prefix)
	}
}
