// Package flowhash provides the 5-tuple flow hash shared by ECMP (in the
// BGP data plane) and MR-MTP's uplink load balancing. Both protocols in the
// paper hash flows across equal-cost uplinks; using one function keeps the
// comparison fair and lets the experiment harness steer a probe flow across
// the monitored failure column for either protocol.
package flowhash

import "repro/internal/netaddr"

// Key is the flow 5-tuple.
type Key struct {
	Src, Dst         netaddr.IPv4
	Proto            byte
	SrcPort, DstPort uint16
}

// Hash computes an FNV-1a hash of the key, finished with an avalanche
// mixer. The finalizer matters: raw FNV's low bit is the XOR of the input
// bytes' parities (odd-multiplier arithmetic preserves parity), so flows
// whose source and destination ports move together would all hash to the
// same uplink — hardware ECMP hashes (CRC, Toeplitz) avalanche for the
// same reason.
func (k Key) Hash() uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	feed := func(b byte) { h = (h ^ uint32(b)) * prime }
	for _, b := range k.Src {
		feed(b)
	}
	for _, b := range k.Dst {
		feed(b)
	}
	feed(k.Proto)
	feed(byte(k.SrcPort >> 8))
	feed(byte(k.SrcPort))
	feed(byte(k.DstPort >> 8))
	feed(byte(k.DstPort))
	// fmix32 finalizer (MurmurHash3).
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}

// FromIPPacket extracts the key from a wire-format IPv4 packet. Transport
// ports are read for TCP and UDP; other protocols hash on addresses only.
func FromIPPacket(wire []byte) Key {
	var k Key
	if len(wire) < 20 {
		return k
	}
	copy(k.Src[:], wire[12:16])
	copy(k.Dst[:], wire[16:20])
	k.Proto = wire[9]
	ihl := int(wire[0]&0x0f) * 4
	if (k.Proto == 6 || k.Proto == 17) && len(wire) >= ihl+4 {
		k.SrcPort = uint16(wire[ihl])<<8 | uint16(wire[ihl+1])
		k.DstPort = uint16(wire[ihl+2])<<8 | uint16(wire[ihl+3])
	}
	return k
}
