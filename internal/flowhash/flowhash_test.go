package flowhash

import (
	"testing"
	"testing/quick"

	"repro/internal/ipv4"
	"repro/internal/netaddr"
	"repro/internal/udp"
)

func TestHashDeterministic(t *testing.T) {
	f := func(k Key) bool { return k.Hash() == k.Hash() }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashSpreads(t *testing.T) {
	// Varying only the source port must produce a roughly even split
	// modulo 2 (two uplinks) — this is what both ECMP and MR-MTP rely on.
	counts := [2]int{}
	k := Key{
		Src:   netaddr.MakeIPv4(192, 168, 11, 1),
		Dst:   netaddr.MakeIPv4(192, 168, 14, 1),
		Proto: 17, DstPort: 47000,
	}
	for p := 0; p < 2000; p++ {
		k.SrcPort = uint16(p)
		counts[k.Hash()%2]++
	}
	if counts[0] < 700 || counts[1] < 700 {
		t.Errorf("hash imbalanced across uplinks: %v", counts)
	}
}

func TestHashUniformAcrossUplinks(t *testing.T) {
	// Guard on the avalanche finalizer: hash a realistic population of
	// 5-tuples (many servers, many ephemeral ports) across every uplink
	// fan-out the fabrics use and require the fullest bucket to stay
	// within a few percent of the mean. Raw FNV-1a without the fmix32
	// finisher fails this for k=2 (its low bit is the input parity).
	for _, k := range []int{2, 3, 4, 8} {
		buckets := make([]int, k)
		n := 0
		for srcHost := byte(11); srcHost < 19; srcHost++ {
			for dstHost := byte(11); dstHost < 19; dstHost++ {
				if srcHost == dstHost {
					continue
				}
				for port := 0; port < 500; port++ {
					key := Key{
						Src:     netaddr.MakeIPv4(192, 168, srcHost, 1),
						Dst:     netaddr.MakeIPv4(192, 168, dstHost, 1),
						Proto:   ipv4.ProtoUDP,
						SrcPort: uint16(20000 + port),
						DstPort: 49000,
					}
					buckets[int(key.Hash())%k]++
					n++
				}
			}
		}
		mean := float64(n) / float64(k)
		for b, c := range buckets {
			if ratio := float64(c) / mean; ratio > 1.05 {
				t.Errorf("k=%d: bucket %d holds %d of %d flows (max/mean %.3f > 1.05)", k, b, c, n, ratio)
			}
		}
	}
}

func TestFromIPPacketUDP(t *testing.T) {
	src := netaddr.MakeIPv4(192, 168, 11, 1)
	dst := netaddr.MakeIPv4(192, 168, 14, 1)
	dg := udp.Datagram{SrcPort: 40001, DstPort: 47000, Payload: []byte("x")}
	pkt := ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Src: src, Dst: dst, TTL: 64},
		Payload: dg.Marshal(src, dst),
	}
	k := FromIPPacket(pkt.Marshal())
	want := Key{Src: src, Dst: dst, Proto: ipv4.ProtoUDP, SrcPort: 40001, DstPort: 47000}
	if k != want {
		t.Errorf("FromIPPacket = %+v, want %+v", k, want)
	}
}

func TestFromIPPacketNonTransport(t *testing.T) {
	src := netaddr.MakeIPv4(10, 0, 0, 1)
	dst := netaddr.MakeIPv4(10, 0, 0, 2)
	pkt := ipv4.Packet{Header: ipv4.Header{Protocol: ipv4.ProtoICMP, Src: src, Dst: dst, TTL: 64}}
	k := FromIPPacket(pkt.Marshal())
	if k.SrcPort != 0 || k.DstPort != 0 || k.Src != src {
		t.Errorf("ICMP key = %+v", k)
	}
}

func TestFromIPPacketShort(t *testing.T) {
	if k := FromIPPacket([]byte{1, 2, 3}); k != (Key{}) {
		t.Errorf("short packet key = %+v, want zero", k)
	}
}

func TestSameFlowSameHashAcrossEncap(t *testing.T) {
	// A packet hashed at the leaf and re-hashed at the spine (after
	// MR-MTP encapsulation is stripped to the inner IP packet) must pick
	// the same plane. This is the invariant the harness uses to steer
	// probes across the monitored column.
	src := netaddr.MakeIPv4(192, 168, 11, 1)
	dst := netaddr.MakeIPv4(192, 168, 14, 1)
	dg := udp.Datagram{SrcPort: 40007, DstPort: 47000}
	pkt := ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Src: src, Dst: dst, TTL: 64},
		Payload: dg.Marshal(src, dst),
	}
	wire := pkt.Marshal()
	h1 := FromIPPacket(wire).Hash()
	forwarded := append([]byte(nil), wire...)
	if err := ipv4.Forward(forwarded); err != nil {
		t.Fatal(err)
	}
	h2 := FromIPPacket(forwarded).Hash()
	if h1 != h2 {
		t.Error("flow hash changed after TTL decrement; ECMP would re-path mid-flight")
	}
}
