// Package bad seeds known findings for the simlint driver tests: one
// walltime violation and one bare justification marker, so the exit-status
// and output-schema tests know exactly what to expect.
package bad

import "time"

// Stamp reads the wall clock: a walltime finding on the time.Now line, and
// a justify finding on the bare marker below it.
func Stamp() time.Time {
	t := time.Now()
	//simlint:deterministic
	return t
}

// FramePool is a toy arena seeding a lifetime finding.
//
//simlint:pool acquire=Get release=Put
type FramePool struct{ free [][]byte }

func (p *FramePool) Get(n int) []byte { return make([]byte, n) }
func (p *FramePool) Put(b []byte)     { p.free = append(p.free, b) }

// ReadAfterPut returns a byte from a buffer already handed back to the pool:
// the seeded use-after-release the lifetime analyzer must rediscover.
func ReadAfterPut(p *FramePool) byte {
	b := p.Get(8)
	b[0] = 1
	p.Put(b)
	return b[0]
}
