// Package bad seeds known findings for the simlint driver tests: one
// walltime violation and one bare justification marker, so the exit-status
// and output-schema tests know exactly what to expect.
package bad

import "time"

// Stamp reads the wall clock: a walltime finding on the time.Now line, and
// a justify finding on the bare marker below it.
func Stamp() time.Time {
	t := time.Now()
	//simlint:deterministic
	return t
}
