// Package ok is the clean fixture for the simlint driver tests: nothing in
// here violates any analyzer.
package ok

// Add is deliberately boring.
func Add(a, b int) int { return a + b }
