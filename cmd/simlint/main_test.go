package main

// Driver-level tests: build the simlint binary once, run it against the
// mini-modules under testdata/modules (each declares `module repro` so the
// per-analyzer package scopes apply), and pin the exit-status contract
// (0 clean / 1 findings / 2 operational error) and the -json and -sarif
// output schemas.

import (
	"encoding/json"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildSimlint compiles the driver into the test's temp dir.
func buildSimlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "simlint")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building simlint: %v\n%s", err, out)
	}
	return bin
}

// runSimlint executes the binary inside one fixture module.
func runSimlint(t *testing.T, bin, module string, args ...string) (stdout string, exit int) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "modules", module))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running simlint in %s: %v", module, err)
		}
		return string(out), ee.ExitCode()
	}
	return string(out), 0
}

func TestExitStatus(t *testing.T) {
	bin := buildSimlint(t)
	cases := []struct {
		name   string
		module string
		args   []string
		exit   int
	}{
		{"clean-text", "clean", nil, 0},
		{"clean-json", "clean", []string{"-json"}, 0},
		{"clean-sarif", "clean", []string{"-sarif"}, 0},
		{"dirty-text", "dirty", nil, 1},
		{"dirty-json", "dirty", []string{"-json"}, 1},
		{"dirty-sarif", "dirty", []string{"-sarif"}, 1},
		{"bad-pattern", "clean", []string{"./does/not/exist/..."}, 2},
		{"json-and-sarif", "clean", []string{"-json", "-sarif"}, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, exit := runSimlint(t, bin, c.module, c.args...); exit != c.exit {
				t.Errorf("exit = %d, want %d", exit, c.exit)
			}
		})
	}
}

func TestJSONSchema(t *testing.T) {
	bin := buildSimlint(t)

	out, exit := runSimlint(t, bin, "dirty", "-json")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	var got []finding
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("-json output is not a findings array: %v\n%s", err, out)
	}
	if len(got) != 4 {
		t.Fatalf("got %d findings, want 4: %+v", len(got), got)
	}
	wantAnalyzers := []string{"walltime", "justify", "unusedmarker", "lifetime"}
	for i, f := range got {
		if f.Analyzer != wantAnalyzers[i] {
			t.Errorf("finding %d analyzer = %q, want %q", i, f.Analyzer, wantAnalyzers[i])
		}
		if f.File != filepath.Join("internal", "bad", "bad.go") {
			t.Errorf("finding %d file = %q", i, f.File)
		}
		if f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Errorf("finding %d incomplete: %+v", i, f)
		}
	}
	if got[0].Line >= got[1].Line {
		t.Errorf("findings not sorted by line: %d then %d", got[0].Line, got[1].Line)
	}
	// The seeded use-after-Put in ReadAfterPut must be rediscovered at its
	// exact position: the read of b on the return line.
	if uaf := got[3]; uaf.Line != 30 || uaf.Col != 9 {
		t.Errorf("lifetime finding at %d:%d, want 30:9: %+v", uaf.Line, uaf.Col, uaf)
	}

	// A clean run still emits a well-formed (empty) array.
	out, exit = runSimlint(t, bin, "clean", "-json")
	if exit != 0 {
		t.Fatalf("clean exit = %d, want 0", exit)
	}
	if err := json.Unmarshal([]byte(out), &got); err != nil || len(got) != 0 {
		t.Fatalf("clean -json = %q (err %v), want []", out, err)
	}
}

func TestSARIFSchema(t *testing.T) {
	bin := buildSimlint(t)
	out, exit := runSimlint(t, bin, "dirty", "-sarif")
	if exit != 1 {
		t.Fatalf("exit = %d, want 1", exit)
	}
	var log sarifFile
	if err := json.Unmarshal([]byte(out), &log); err != nil {
		t.Fatalf("-sarif output is not a SARIF log: %v\n%s", err, out)
	}
	if log.Version != "2.1.0" || log.Schema == "" {
		t.Errorf("version = %q schema = %q", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "simlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// Every registered analyzer appears in the rule table, findings or not.
	rules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no description", r.ID)
		}
		rules[r.ID] = true
	}
	for _, want := range []string{"maporder", "walltime", "justify", "crossshard", "clockdomain", "lifetime", "unusedmarker"} {
		if !rules[want] {
			t.Errorf("rule table missing %s (have %v)", want, rules)
		}
	}
	if len(run.Results) != 4 {
		t.Fatalf("got %d results, want 4: %+v", len(run.Results), run.Results)
	}
	for i, r := range run.Results {
		if !rules[r.RuleID] {
			t.Errorf("result %d ruleId %q not in rule table", i, r.RuleID)
		}
		if r.Level != "error" || r.Message.Text == "" {
			t.Errorf("result %d level/message incomplete: %+v", i, r)
		}
		if len(r.Locations) != 1 {
			t.Fatalf("result %d has %d locations", i, len(r.Locations))
		}
		loc := r.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI != filepath.Join("internal", "bad", "bad.go") {
			t.Errorf("result %d uri = %q", i, loc.ArtifactLocation.URI)
		}
		if loc.ArtifactLocation.URIBaseID != "%SRCROOT%" {
			t.Errorf("result %d uriBaseId = %q", i, loc.ArtifactLocation.URIBaseID)
		}
		if loc.Region.StartLine <= 0 || loc.Region.StartColumn <= 0 {
			t.Errorf("result %d region incomplete: %+v", i, loc.Region)
		}
	}
}
