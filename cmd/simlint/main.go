// Command simlint is the repo's lint driver: a multichecker that runs the
// custom analyzers under tools/analyzers over the module and fails if any
// site violates the determinism contract (DESIGN.md §8), the hot-path
// contract (DESIGN.md §9), or the partition-safety contract (DESIGN.md §13).
//
// Usage:
//
//	simlint [-json|-sarif] [packages]
//
// With no arguments it checks ./... . Each analyzer applies only to the
// packages where its rule is a contract rather than a style preference:
//
//	maporder     repro/internal/...  (simulation + protocol code)
//	walltime     repro/internal/...
//	sharedstate  repro/internal/...  (everything a trial worker can reach)
//	panicpath    the packet-processing packages (mrmtp, ipstack, ethernet,
//	             ipv4, udp, tcp); cmd/ stays out of scope — its writers
//	             return errors, which the errcheck sweep makes them handle
//	allocfree    the packet-processing packages plus simnet (hot-path
//	             roots are the //simlint:hotpath annotations)
//	framealias   the packet-processing packages plus simnet (frame
//	             ownership at the Port.Send boundary)
//	justify      every package (a bare //simlint marker is wrong anywhere)
//	crossshard   reads the whole module, reports in repro/internal/...
//	clockdomain  reads the whole module, reports in repro/internal/...
//	lifetime     reads the whole module, reports in repro/internal/...
//	             (pooled-resource lifetimes: the event freelist and the
//	             frame arena)
//	unusedmarker runs last; reports justification markers that no analyzer
//	             consulted during this run — stale suppressions whose
//	             finding has moved or disappeared
//
// crossshard, clockdomain, and lifetime are module passes: they build a
// cross-package call graph and per-function summaries from every loaded
// package, then report only inside their scope. unusedmarker is scoped per
// marker: a marker only counts as stale in packages where the analyzer that
// honors it actually ran (see markerApplies).
//
// Diagnostics print as file:line:col: message (analyzer); with -json they
// are emitted instead as a JSON array of {file,line,col,analyzer,message}
// objects on stdout, and with -sarif as a SARIF 2.1.0 log for code-scanning
// upload. The exit status is 1 if anything was reported, 2 on operational
// failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/analyzers/allocfree"
	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/clockdomain"
	"repro/tools/analyzers/crossshard"
	"repro/tools/analyzers/framealias"
	"repro/tools/analyzers/justify"
	"repro/tools/analyzers/lifetime"
	"repro/tools/analyzers/load"
	"repro/tools/analyzers/maporder"
	"repro/tools/analyzers/panicpath"
	"repro/tools/analyzers/sharedstate"
	"repro/tools/analyzers/walltime"
)

// packetPkgs are the packages whose code runs per simulated packet; they
// carry the panicpath rule and, together with simnet, the hot-path rules.
var packetPkgs = map[string]bool{
	"repro/internal/mrmtp":    true,
	"repro/internal/ipstack":  true,
	"repro/internal/ethernet": true,
	"repro/internal/ipv4":     true,
	"repro/internal/udp":      true,
	"repro/internal/tcp":      true,
}

func isPacketPkg(p string) bool { return packetPkgs[p] }

// isHotPkg additionally covers the simulator core and its frame arena:
// Port.Send, frame delivery, and buffer recycling are the innermost loop of
// every experiment.
func isHotPkg(p string) bool {
	return packetPkgs[p] || p == "repro/internal/simnet" || p == "repro/internal/simnet/framepool"
}

func isInternal(importPath string) bool {
	return strings.HasPrefix(importPath, "repro/internal/")
}

func anyPkg(string) bool { return true }

// checks pairs each per-package analyzer with its package scope.
var checks = []struct {
	analyzer *analysis.Analyzer
	applies  func(importPath string) bool
}{
	{maporder.Analyzer, isInternal},
	{walltime.Analyzer, isInternal},
	{sharedstate.Analyzer, isInternal},
	{panicpath.Analyzer, isPacketPkg},
	{allocfree.Analyzer, isHotPkg},
	{framealias.Analyzer, isHotPkg},
	{justify.Analyzer, anyPkg},
}

// moduleChecks pairs each module pass with its reporting scope; the pass
// itself always reads every loaded package.
var moduleChecks = []struct {
	analyzer *analysis.ModuleAnalyzer
	reportIn func(importPath string) bool
}{
	{crossshard.Analyzer, isInternal},
	{clockdomain.Analyzer, isInternal},
	{lifetime.Analyzer, isInternal},
	// unusedmarker must stay last: it audits the consultations every
	// other analyzer recorded during this run.
	{justify.UnusedMarkers, anyPkg},
}

// markerApplies tells unusedmarker where each justification marker is within
// some analyzer's sight; a marker outside its analyzer's package scope is
// unreachable, not stale. This table mirrors checks/moduleChecks above.
func markerApplies(importPath, marker string) bool {
	switch marker {
	case analysis.SuppressionComment, // maporder, walltime, sharedstate
		analysis.SharedComment,    // sharedstate
		analysis.ShardSafeComment, // crossshard
		analysis.ClockSafeComment, // clockdomain
		analysis.LifetimeComment:  // lifetime
		return isInternal(importPath)
	case analysis.AllocComment, analysis.FrameOwnComment: // allocfree, framealias
		return isHotPkg(importPath)
	}
	return false
}

// finding is one printable diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as a SARIF 2.1.0 log instead of text")
	flag.Parse()
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "simlint: -json and -sarif are mutually exclusive")
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	justify.UnusedApplies = markerApplies
	analysis.ResetMarkerUsage()

	var findings []finding
	relFile := func(file string) string {
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return file
	}

	for _, pkg := range pkgs {
		for _, c := range checks {
			if !c.applies(pkg.ImportPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  c.analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := c.analyzer.Name
			fset := pkg.Fset
			pass.Report = func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				findings = append(findings, finding{
					File: relFile(pos.Filename), Line: pos.Line, Col: pos.Column,
					Message: d.Message, Analyzer: name,
				})
			}
			if _, err := c.analyzer.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %s on %s: %v\n", name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}

	// Module passes see every loaded package at once; the loader parses all
	// targets into one FileSet, so positions compare across units.
	if len(pkgs) > 0 {
		units := make([]*analysis.PackageUnit, len(pkgs))
		for i, pkg := range pkgs {
			units[i] = &analysis.PackageUnit{
				ImportPath: pkg.ImportPath,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.Info,
			}
		}
		fset := pkgs[0].Fset
		for _, mc := range moduleChecks {
			name := mc.analyzer.Name
			pass := &analysis.ModulePass{
				Analyzer: mc.analyzer,
				Fset:     fset,
				Units:    units,
				ReportIn: mc.reportIn,
				Report: func(d analysis.Diagnostic) {
					pos := fset.Position(d.Pos)
					findings = append(findings, finding{
						File: relFile(pos.Filename), Line: pos.Line, Col: pos.Column,
						Message: d.Message, Analyzer: name,
					})
				},
			}
			if _, err := mc.analyzer.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %s: %v\n", name, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	case *sarifOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifLog(findings)); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Col, f.Message, f.Analyzer)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
