// Command simlint is the repo's determinism lint driver: a multichecker
// that runs the custom analyzers under tools/analyzers over the module and
// fails if any site violates the determinism contract (DESIGN.md).
//
// Usage:
//
//	simlint [packages]
//
// With no arguments it checks ./... . Each analyzer applies only to the
// packages where its rule is a contract rather than a style preference:
//
//	maporder   repro/internal/...  (simulation + protocol code)
//	walltime   repro/internal/...
//	panicpath  the packet-processing packages (mrmtp, ipstack, ethernet,
//	           ipv4, udp, tcp)
//
// Diagnostics print as file:line:col: message (analyzer); the exit status
// is 1 if anything was reported, 2 on operational failure.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/tools/analyzers/analysis"
	"repro/tools/analyzers/load"
	"repro/tools/analyzers/maporder"
	"repro/tools/analyzers/panicpath"
	"repro/tools/analyzers/walltime"
)

// hotPathPkgs are the packages whose code runs per simulated packet; only
// these carry the panicpath rule.
var hotPathPkgs = map[string]bool{
	"repro/internal/mrmtp":    true,
	"repro/internal/ipstack":  true,
	"repro/internal/ethernet": true,
	"repro/internal/ipv4":     true,
	"repro/internal/udp":      true,
	"repro/internal/tcp":      true,
}

// checks pairs each analyzer with its package scope.
var checks = []struct {
	analyzer *analysis.Analyzer
	applies  func(importPath string) bool
}{
	{maporder.Analyzer, isInternal},
	{walltime.Analyzer, isInternal},
	{panicpath.Analyzer, func(p string) bool { return hotPathPkgs[p] }},
}

func isInternal(importPath string) bool {
	return strings.HasPrefix(importPath, "repro/internal/")
}

// finding is one printable diagnostic.
type finding struct {
	file      string
	line, col int
	message   string
	analyzer  string
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	pkgs, err := load.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}

	var findings []finding
	for _, pkg := range pkgs {
		for _, c := range checks {
			if !c.applies(pkg.ImportPath) {
				continue
			}
			pass := &analysis.Pass{
				Analyzer:  c.analyzer,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			name := c.analyzer.Name
			pass.Report = func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				file := pos.Filename
				if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
				findings = append(findings, finding{
					file: file, line: pos.Line, col: pos.Column,
					message: d.Message, analyzer: name,
				})
			}
			if _, err := c.analyzer.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "simlint: %s on %s: %v\n", name, pkg.ImportPath, err)
				os.Exit(2)
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.col != b.col {
			return a.col < b.col
		}
		return a.analyzer < b.analyzer
	})
	for _, f := range findings {
		fmt.Printf("%s:%d:%d: %s (%s)\n", f.file, f.line, f.col, f.message, f.analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
