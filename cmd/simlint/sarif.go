package main

// SARIF 2.1.0 output for code-scanning upload. Only the slice of the schema
// that GitHub's code-scanning ingestion requires is modeled: one run, one
// driver, a rule per analyzer, and one result per finding with a physical
// location. Everything is plain structs so the emitter stays stdlib-only.

// sarifFile is the top-level log.
type sarifFile struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLog renders the findings as one SARIF run. The rule table always
// lists every registered analyzer so a clean run still documents what was
// checked.
func sarifLog(findings []finding) sarifFile {
	var rules []sarifRule
	for _, c := range checks {
		rules = append(rules, sarifRule{
			ID:               c.analyzer.Name,
			ShortDescription: sarifMessage{Text: c.analyzer.Doc},
		})
	}
	for _, mc := range moduleChecks {
		rules = append(rules, sarifRule{
			ID:               mc.analyzer.Name,
			ShortDescription: sarifMessage{Text: mc.analyzer.Doc},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       f.File,
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		})
	}
	return sarifFile{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "simlint", Rules: rules}},
			Results: results,
		}},
	}
}
