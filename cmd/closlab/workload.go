package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/topology"
	"repro/internal/workload"
)

// workloadProtocols is the comparison the workload experiment draws: the
// paper's protocol against plain BGP/ECMP. (BGP/BFD converges like MR-MTP
// here and adds nothing to the FCT story for the extra runtime.)
var workloadProtocols = []harness.Protocol{harness.ProtoMRMTP, harness.ProtoBGP}

// workloadRun is one (protocol, pods, scenario) cell with its artifacts.
type workloadRun struct {
	summary harness.WorkloadSummary
	trials  []harness.WorkloadResult
}

// workloadExperiment offers the heavy-tailed flow workload to every
// protocol/topology cell, steady-state and with the TC2 failure injected
// mid-run, prints the FCT and load-balance tables and writes CSV/JSON
// artifacts to dir. mode selects the flow transport (packet, fluid or
// hybrid) and flows, when positive, overrides the published flow count.
func workloadExperiment(specs []topology.Spec, trials int, seed int64, dir string, mode workload.Mode, flows int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var runs []workloadRun
	for _, spec := range specs {
		for _, proto := range workloadProtocols {
			for _, midFailure := range []bool{false, true} {
				w := harness.DefaultWorkloadConfig()
				w.MidFailure = midFailure
				w.Engine = mode
				if flows > 0 {
					w.Flows = flows
				}
				s, rs, err := harness.RunWorkloadTrials(harness.DefaultOptions(spec, proto, seed), w, trials)
				if err != nil {
					return err
				}
				emitf("%s", harness.RenderWorkload(s))
				runs = append(runs, workloadRun{summary: s, trials: rs})
			}
		}
	}
	emitf("\n")

	if err := writeWorkloadFCTCSV(filepath.Join(dir, "workload-fct.csv"), runs); err != nil {
		return err
	}
	if err := writeWorkloadImbalanceCSV(filepath.Join(dir, "workload-imbalance.csv"), runs); err != nil {
		return err
	}
	if err := writeWorkloadTelemetryCSV(filepath.Join(dir, "workload-telemetry.csv"), runs); err != nil {
		return err
	}
	if err := writeWorkloadJSON(filepath.Join(dir, "workload-summary.json"), runs); err != nil {
		return err
	}
	emitf("workload: wrote workload-{fct,imbalance,telemetry}.csv and workload-summary.json to %s\n", dir)
	return nil
}

func writeWorkloadFCTCSV(path string, runs []workloadRun) error {
	var b strings.Builder
	// strings.Builder writes cannot fail; the blank assignments make the
	// discarded results explicit rather than accidental.
	_, _ = b.WriteString("protocol,pods,scenario,bucket,flows,completed,mean_ms,p50_ms,p95_ms,p99_ms,max_ms\n")
	for _, r := range runs {
		s := r.summary
		for _, bk := range s.Buckets {
			_, _ = fmt.Fprintf(&b, "%s,%d,%s,%s,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f\n",
				s.Protocol, s.Pods, s.Scenario, bk.Label, bk.Flows, bk.Completed,
				bk.FCT.Mean, bk.FCT.P50, bk.FCT.P95, bk.FCT.P99, bk.FCT.Max)
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func writeWorkloadImbalanceCSV(path string, runs []workloadRun) error {
	var b strings.Builder
	_, _ = b.WriteString("protocol,pods,scenario,trial,group,max_over_mean,jain,uplink_bytes\n")
	for _, r := range runs {
		s := r.summary
		for ti, tr := range r.trials {
			for _, gl := range tr.GroupLoads {
				var parts []string
				for _, n := range gl.Bytes {
					parts = append(parts, fmt.Sprintf("%d", n))
				}
				_, _ = fmt.Fprintf(&b, "%s,%d,%s,%d,%s,%.4f,%.4f,%s\n",
					s.Protocol, s.Pods, s.Scenario, ti, gl.Name,
					gl.MaxOverMean, gl.Jain, strings.Join(parts, ";"))
			}
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// writeWorkloadTelemetryCSV exports the sampled link time series of each
// cell's first trial on the smallest topology — enough to plot utilization,
// queue depth and drops around the failure without dumping every trial.
// Frame-pool occupancy rides along as `framepool` rows (link columns empty,
// pool columns filled) so a buffer leak is visible on the same time axis.
func writeWorkloadTelemetryCSV(path string, runs []workloadRun) error {
	minPods := 0
	for _, r := range runs {
		if minPods == 0 || r.summary.Pods < minPods {
			minPods = r.summary.Pods
		}
	}
	var b strings.Builder
	// The engine column rides at the end so every pre-existing column stays
	// byte-identical in packet mode.
	_, _ = b.WriteString("protocol,pods,scenario,link,t_us,tx_bytes,util,queued,drops,lost,corrupted,pool_in_use,pool_peak,pool_recycled,engine\n")
	for _, r := range runs {
		if r.summary.Pods != minPods || len(r.trials) == 0 {
			continue
		}
		s := r.summary
		for _, sr := range r.trials[0].Series {
			for _, smp := range sr.Samples {
				_, _ = fmt.Fprintf(&b, "%s,%d,%s,%s,%d,%d,%.4f,%d,%d,%d,%d,,,,%s\n",
					s.Protocol, s.Pods, s.Scenario, sr.Name,
					smp.At/time.Microsecond, smp.TxBytes, smp.Util, smp.Queued, smp.Drops,
					smp.Lost, smp.Corrupted, s.Engine)
			}
		}
		for _, ps := range r.trials[0].PoolSamples {
			_, _ = fmt.Fprintf(&b, "%s,%d,%s,framepool,%d,,,,,,,%d,%d,%d,%s\n",
				s.Protocol, s.Pods, s.Scenario, ps.At/time.Microsecond,
				ps.InUse, ps.Peak, ps.Recycled, s.Engine)
		}
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// workloadJSONSummary is the machine-readable form of one cell.
type workloadJSONSummary struct {
	Protocol       string                `json:"protocol"`
	Pods           int                   `json:"pods"`
	Scenario       string                `json:"scenario"`
	Engine         string                `json:"engine"`
	Trials         int                   `json:"trials"`
	Flows          int                   `json:"flows"`
	Completed      int                   `json:"completed"`
	Abandoned      int                   `json:"abandoned"`
	Incomplete     int                   `json:"incomplete"`
	CompletionRate float64               `json:"completion_rate"`
	PacketsSent    uint64                `json:"packets_sent"`
	Retransmits    uint64                `json:"retransmits"`
	FluidFlows     int                   `json:"fluid_flows"`
	PeakConcurrent int                   `json:"peak_concurrent"`
	Buckets        []workloadJSONBucket  `json:"fct_buckets"`
	Imbalance      workloadJSONImbalance `json:"uplink_imbalance"`
	Drops          float64               `json:"mean_drops_per_trial"`
	PeakQueue      int                   `json:"peak_queue"`
	PeakUtil       float64               `json:"peak_util"`
}

type workloadJSONBucket struct {
	Label     string  `json:"label"`
	Flows     int     `json:"flows"`
	Completed int     `json:"completed"`
	MeanMs    float64 `json:"mean_ms"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
	MaxMs     float64 `json:"max_ms"`
}

type workloadJSONImbalance struct {
	MaxOverMeanMean float64 `json:"max_over_mean_mean"`
	MaxOverMeanP95  float64 `json:"max_over_mean_p95"`
	MaxOverMeanMax  float64 `json:"max_over_mean_max"`
	Groups          int     `json:"groups"`
	JainMean        float64 `json:"jain_mean"`
}

func writeWorkloadJSON(path string, runs []workloadRun) error {
	var out []workloadJSONSummary
	for _, r := range runs {
		s := r.summary
		js := workloadJSONSummary{
			Protocol:       s.Protocol.String(),
			Pods:           s.Pods,
			Scenario:       s.Scenario,
			Engine:         s.Engine,
			Trials:         s.Trials,
			Flows:          s.Flows,
			Completed:      s.Completed,
			Abandoned:      s.Abandoned,
			Incomplete:     s.Incomplete,
			CompletionRate: s.CompletionRate,
			PacketsSent:    s.PacketsSent,
			Retransmits:    s.Retransmits,
			FluidFlows:     s.FluidFlows,
			PeakConcurrent: s.PeakConcurrent,
			Imbalance: workloadJSONImbalance{
				MaxOverMeanMean: s.Imbalance.Mean,
				MaxOverMeanP95:  s.Imbalance.P95,
				MaxOverMeanMax:  s.Imbalance.Max,
				Groups:          s.Imbalance.N,
				JainMean:        s.JainMean,
			},
			Drops:     s.Drops,
			PeakQueue: s.PeakQueue,
			PeakUtil:  s.PeakUtil,
		}
		for _, bk := range s.Buckets {
			js.Buckets = append(js.Buckets, workloadJSONBucket{
				Label:     bk.Label,
				Flows:     bk.Flows,
				Completed: bk.Completed,
				MeanMs:    bk.FCT.Mean,
				P50Ms:     bk.FCT.P50,
				P95Ms:     bk.FCT.P95,
				P99Ms:     bk.FCT.P99,
				MaxMs:     bk.FCT.Max,
			})
		}
		out = append(out, js)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
