// Command closlab reruns the paper's experiments and prints each figure's
// data as a grid (rows: failure cases TC1–TC4; columns: protocol
// configurations), for the 2-PoD and 4-PoD topologies.
//
// Usage:
//
//	closlab -experiment convergence            # Fig. 4 (ms)
//	closlab -experiment blastradius            # Fig. 5 (routers)
//	closlab -experiment overhead               # Fig. 6 (bytes)
//	closlab -experiment loss-near              # Fig. 7 (packets)
//	closlab -experiment loss-far               # Fig. 8 (packets)
//	closlab -experiment keepalive              # Figs. 9-10 (capture summary)
//	closlab -experiment config                 # Listings 1-2 comparison
//	closlab -experiment workload               # FCT + load balance under load
//	closlab -experiment chaos                  # fault-injection campaigns
//	closlab -experiment trace                  # path tracing + gray-failure localization
//	closlab -experiment bench-partition        # space-parallel engine timing
//	closlab -experiment bench-fluid            # flow-level engine throughput
//	closlab -experiment all                    # everything (virtual-time figures)
//
// Flags -trials and -seed control averaging, -pods restricts the topology,
// and -parallel bounds how many trials run concurrently (the figures do not
// depend on it: trial seeds derive from trial indices). -shards partitions
// each fabric across worker goroutines via the space-parallel engine; every
// figure is bit-identical at any shard count, so it is purely a wall-clock
// knob (like -parallel). -engine switches the workload experiment between
// the packet engine, the analytic fluid model, and the hybrid split
// (-engine hybrid -flows 1000000 is the million-flow configuration);
// -flows overrides the flow count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"repro/internal/capture"
	"repro/internal/harness"
	"repro/internal/routerlog"
	"repro/internal/topology"
	"repro/internal/workload"
)

var protocols = []harness.Protocol{harness.ProtoMRMTP, harness.ProtoBGP, harness.ProtoBGPBFD}

func main() {
	trials := flag.Int("trials", 3, "trials to average per data point")
	seed := flag.Int64("seed", 1, "base random seed")
	pods := flag.Int("pods", 0, "restrict to one topology size (2 or 4); 0 = both")
	out := flag.String("out", "closlab-artifacts", "output directory for -experiment artifacts")
	parallel := flag.Int("parallel", harness.Workers,
		"concurrent trials per data point (1 = sequential; results are identical either way)")
	shards := flag.Int("shards", harness.DefaultPartitions,
		"partitions per fabric (1 = sequential engine; must divide the PoD count; results are identical either way)")
	benchOut := flag.String("bench-out", "", "output file for bench experiments (default BENCH_partition.json / BENCH_fluid.json)")
	engine := flag.String("engine", "packet", "workload flow transport: packet|fluid|hybrid")
	flows := flag.Int("flows", 0, "override the workload flow count (0 = the published 160)")

	// The experiment registry. Declared before the -experiment flag so its
	// usage string (and the unknown-value error) enumerates the registered
	// names — adding an experiment here is the whole wiring job, with no
	// hand-maintained list to fall out of date.
	experiments := []struct {
		name string
		fn   func([]topology.Spec, int, int64) error
	}{
		{"convergence", convergence},
		{"blastradius", blastRadius},
		{"overhead", overhead},
		{"loss-near", func(s []topology.Spec, n int, seed int64) error { return loss(s, n, seed, false) }},
		{"loss-far", func(s []topology.Spec, n int, seed int64) error { return loss(s, n, seed, true) }},
		{"keepalive", keepAlive},
		{"config", configComparison},
		{"nodefail", nodeFailure},
		{"flap", flapChurn},
		{"workload", func(s []topology.Spec, n int, seed int64) error {
			mode, _ := workload.ModeByName(*engine)
			return workloadExperiment(s, n, seed, *out, mode, *flows)
		}},
		{"chaos", func(s []topology.Spec, n int, seed int64) error {
			return chaosExperiment(s, n, seed, *out)
		}},
		{"trace", func(s []topology.Spec, n int, seed int64) error {
			return traceExperiment(s, n, seed, *out)
		}},
	}
	known := make([]string, 0, len(experiments)+3)
	for _, e := range experiments {
		known = append(known, e.name)
	}
	known = append(known, "bench-partition", "bench-fluid", "artifacts", "all")
	experiment := flag.String("experiment", "all", strings.Join(known, "|"))

	flag.Parse()

	// Reject contradictory flag combinations with usage before anything
	// runs: a flag that silently does nothing for the chosen experiment is
	// worse than an error, because the artifacts look valid.
	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(set, *experiment, *engine, *trials, *parallel, *shards, *flows); err != nil {
		_, _ = fmt.Fprintf(os.Stderr, "closlab: %v\n\n", err) // best effort: exiting anyway
		flag.Usage()
		os.Exit(2)
	}
	harness.Workers = *parallel
	harness.DefaultPartitions = *shards

	var specs []topology.Spec
	switch *pods {
	case 0:
		specs = []topology.Spec{topology.TwoPodSpec(), topology.FourPodSpec()}
	case 2:
		specs = []topology.Spec{topology.TwoPodSpec()}
	case 4:
		specs = []topology.Spec{topology.FourPodSpec()}
	default:
		fatalf("unsupported -pods %d (want 2 or 4)", *pods)
	}

	// The bench experiments are opt-in only (they measure wall time, so
	// "all" — which exists to regenerate the paper's virtual-time figures —
	// skips them).
	if *experiment == "bench-partition" {
		path := *benchOut
		if path == "" {
			path = "BENCH_partition.json"
		}
		if err := benchPartition(specs, *trials, *seed, path); err != nil {
			fatalf("bench-partition: %v", err)
		}
		return
	}
	if *experiment == "bench-fluid" {
		path := *benchOut
		if path == "" {
			path = "BENCH_fluid.json"
		}
		if err := benchFluid(specs[0], *seed, path); err != nil {
			fatalf("bench-fluid: %v", err)
		}
		return
	}

	// Reject a bad (or empty) -experiment before anything runs: a typo must
	// exit non-zero naming every registered experiment, not masquerade as a
	// successful empty run.
	if !slices.Contains(known, *experiment) {
		fatalf("unknown -experiment %q (want one of: %s)", *experiment, strings.Join(known, "|"))
	}

	for _, e := range experiments {
		if *experiment != "all" && *experiment != e.name {
			continue
		}
		if err := e.fn(specs, *trials, *seed); err != nil {
			fatalf("%s: %v", e.name, err)
		}
	}
	if *experiment == "artifacts" {
		if err := artifacts(specs[0], *seed, *out); err != nil {
			fatalf("artifacts: %v", err)
		}
	}
}

// validateFlags rejects flag combinations that would silently misbehave.
// set holds the flags explicitly passed on the command line, so defaults
// never trip a check.
func validateFlags(set map[string]bool, experiment, engine string, trials, parallel, shards, flows int) error {
	if trials < 1 {
		return fmt.Errorf("-trials %d: need at least one trial", trials)
	}
	if parallel < 1 {
		return fmt.Errorf("-parallel %d: need at least one worker", parallel)
	}
	if shards < 1 {
		return fmt.Errorf("-shards %d: need at least one partition", shards)
	}
	if flows < 0 {
		return fmt.Errorf("-flows %d: a flow count cannot be negative", flows)
	}
	if _, ok := workload.ModeByName(engine); !ok {
		return fmt.Errorf("-engine %q: want packet, fluid or hybrid", engine)
	}
	if set["engine"] && experiment != "workload" {
		return fmt.Errorf("-engine only applies to -experiment workload (got %q); bench-fluid runs both engines itself", experiment)
	}
	if set["flows"] && experiment != "workload" {
		return fmt.Errorf("-flows only applies to -experiment workload (got %q)", experiment)
	}
	if set["bench-out"] && experiment != "bench-partition" && experiment != "bench-fluid" {
		return fmt.Errorf("-bench-out only applies to the bench experiments (got %q)", experiment)
	}
	if set["shards"] && experiment == "bench-partition" {
		return fmt.Errorf("-shards conflicts with bench-partition: the bench sweeps shard counts itself")
	}
	if set["shards"] && experiment == "bench-fluid" {
		return fmt.Errorf("-shards conflicts with bench-fluid: the bench pins the sequential engine so rows are comparable")
	}
	return nil
}

// artifacts runs a TC1 failure per protocol and writes the raw testbed
// artifacts a FABRIC user would collect: per-router text logs (§VI.B) and
// a Wireshark-compatible pcap of every link.
func artifacts(spec topology.Spec, seed int64, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, proto := range protocols {
		name := map[harness.Protocol]string{
			harness.ProtoMRMTP:  "mrmtp",
			harness.ProtoBGP:    "bgp",
			harness.ProtoBGPBFD: "bgp-bfd",
		}[proto]
		journal := &routerlog.Journal{}
		opts := harness.DefaultOptions(spec, proto, seed)
		opts.Journal = journal
		f, err := harness.Build(opts)
		if err != nil {
			return err
		}
		var rec capture.Recorder
		rec.TapAll(f.Sim)
		if err := f.WarmUp(harness.WarmupTime); err != nil {
			return err
		}
		if _, err := f.Fail(topology.TC1); err != nil {
			return err
		}
		f.Sim.RunFor(5 * time.Second)

		logPath := filepath.Join(dir, name+"-logs.txt")
		if err := os.WriteFile(logPath, []byte(journal.Render()), 0o644); err != nil {
			return err
		}
		pcapPath := filepath.Join(dir, name+"-capture.pcap")
		w, err := os.Create(pcapPath)
		if err != nil {
			return err
		}
		if err := rec.WritePCAP(w); err != nil {
			_ = w.Close() // the WritePCAP failure is the error worth returning
			return err
		}
		if err := w.Close(); err != nil {
			return err
		}
		emitf("%s: wrote %s (%d log lines) and %s (%d frames)\n",
			proto, logPath, len(journal.Lines), pcapPath, rec.Count())
	}
	return nil
}

func fatalf(format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, "closlab: "+format+"\n", args...) // best effort: exiting anyway
	os.Exit(1)
}

// emitf writes experiment output to stdout and dies if the write fails: the
// printed grids and summaries ARE the artifacts (typically redirected to a
// file), so a short write must not masquerade as a successful run.
func emitf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		fatalf("writing output: %v", err)
	}
}

func columns(specs []topology.Spec) []string {
	var cols []string
	for _, spec := range specs {
		for _, p := range protocols {
			cols = append(cols, fmt.Sprintf("%s %dP", p, spec.Pods))
		}
	}
	return cols
}

func failureGrid(title string, specs []topology.Spec, trials int, seed int64,
	cell func(harness.FailureSummary) string) error {
	grid := harness.NewGrid(title, columns(specs))
	for _, spec := range specs {
		for _, proto := range protocols {
			col := fmt.Sprintf("%s %dP", proto, spec.Pods)
			for _, tc := range topology.AllFailureCases() {
				s, err := harness.RunFailureTrials(harness.DefaultOptions(spec, proto, seed), tc, trials)
				if err != nil {
					return err
				}
				grid.Set(tc.String(), col, cell(s))
			}
		}
	}
	emitf("%s\n", grid.Render())
	return nil
}

func convergence(specs []topology.Spec, trials int, seed int64) error {
	return failureGrid("Fig. 4 — network convergence time (ms)", specs, trials, seed,
		func(s harness.FailureSummary) string {
			return fmt.Sprintf("%.1f", float64(s.Convergence)/float64(time.Millisecond))
		})
}

func blastRadius(specs []topology.Spec, trials int, seed int64) error {
	return failureGrid("Fig. 5 — blast radius (routers updating tables)", specs, trials, seed,
		func(s harness.FailureSummary) string { return fmt.Sprintf("%.0f", s.BlastRadius) })
}

func overhead(specs []topology.Spec, trials int, seed int64) error {
	return failureGrid("Fig. 6 — control overhead after failure (layer-2 bytes)", specs, trials, seed,
		func(s harness.FailureSummary) string { return fmt.Sprintf("%.0f", s.ControlBytes) })
}

func loss(specs []topology.Spec, trials int, seed int64, reverse bool) error {
	title := "Fig. 7 — packets lost, sender near failure (ToR 11 -> ToR 14)"
	if reverse {
		title = "Fig. 8 — packets lost, sender far from failure (ToR 14 -> ToR 11)"
	}
	grid := harness.NewGrid(title, columns(specs))
	for _, spec := range specs {
		for _, proto := range protocols {
			col := fmt.Sprintf("%s %dP", proto, spec.Pods)
			for _, tc := range topology.AllFailureCases() {
				avg, err := harness.RunLossTrials(harness.DefaultOptions(spec, proto, seed), tc, reverse, trials)
				if err != nil {
					return err
				}
				grid.Set(tc.String(), col, fmt.Sprintf("%.0f", avg))
			}
		}
	}
	emitf("%s\n", grid.Render())
	return nil
}

func keepAlive(specs []topology.Spec, _ int, seed int64) error {
	window := 10 * time.Second
	for _, proto := range protocols {
		r, err := harness.RunKeepAlive(harness.DefaultOptions(specs[0], proto, seed), window)
		if err != nil {
			return err
		}
		emitf("Figs. 9-10 — idle-link capture, %s, %v on L-1-1<->S-1-1:\n", proto, window)
		emitf("%s\n", capture.Render(r.Summary))
		emitf("liveness bytes total: %d\n\n", r.TotalKeepAliveBytes())
	}
	return nil
}

func nodeFailure(specs []topology.Spec, _ int, seed int64) error {
	emitf("Extended failure cases (paper §IX) — whole-router crash of S-1-1:\n")
	emitf("%-14s %6s %14s %8s %12s\n", "protocol", "pods", "convergence", "blast", "ctl bytes")
	for _, spec := range specs {
		for _, proto := range protocols {
			r, err := harness.RunNodeFailure(harness.DefaultOptions(spec, proto, seed), "S-1-1")
			if err != nil {
				return err
			}
			emitf("%-14s %6d %14v %8d %12d\n", proto, spec.Pods, r.Convergence.Round(100*time.Microsecond), r.BlastRadius, r.ControlBytes)
		}
	}
	emitf("\n")
	return nil
}

func flapChurn(specs []topology.Spec, trials int, seed int64) error {
	emitf("Extended failure cases (paper §IX) — TC1 interface flapping 5x (down 500ms, up 4s):\n")
	emitf("%-14s %10s %12s %12s %10s\n", "protocol", "msgs", "ctl bytes", "route evts", "recovered")
	for _, proto := range protocols {
		s, err := harness.RunFlapTrials(harness.DefaultOptions(specs[0], proto, seed), 5, 500*time.Millisecond, 4*time.Second, trials)
		if err != nil {
			return err
		}
		emitf("%-14s %10.0f %12.0f %12.0f %10v\n", proto, s.ControlMsgs, s.ControlBytes, s.RouteEvents, s.Recovered)
	}
	emitf("\n")
	return nil
}

func configComparison(specs []topology.Spec, _ int, _ int64) error {
	for _, spec := range specs {
		topo, err := topology.Build(spec)
		if err != nil {
			return err
		}
		cs, err := topo.MeasureConfigs(true)
		if err != nil {
			return err
		}
		emitf("Listings 1-2 — configuration burden, %d-PoD (%d routers):\n", spec.Pods, cs.Routers)
		emitf("  BGP/BFD per-router configs: %6d bytes, %4d lines total\n", cs.BGPBytes, cs.BGPLines)
		emitf("  MR-MTP fabric-wide JSON:    %6d bytes, %4d lines\n\n", cs.MRMTPBytes, cs.MRMTPLines)
	}
	return nil
}
