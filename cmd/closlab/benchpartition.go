package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/topology"
)

// benchPartitionSpec is the fabric the partition benchmark shards: large
// enough (8 PoDs, 40 routers + servers per PoD slice) that per-shard work
// dominates the synchronization barriers.
func benchPartitionSpec() topology.Spec {
	return topology.Spec{Pods: 8, LeavesPerPod: 4, SpinesPerPod: 4, UplinksPerSpine: 2, ServersPerLeaf: 1}
}

// partitionShardStat is one shard's share of the run.
type partitionShardStat struct {
	Nodes  int           `json:"nodes"`
	Events uint64        `json:"events"`
	BusyNs time.Duration `json:"busy_ns"`
}

// partitionBenchRow is the measurement for one shard count.
type partitionBenchRow struct {
	Shards int `json:"shards"`
	// NsPerOp is the mean wall-clock cost of one simulated second of
	// steady-state fabric churn after warm-up.
	NsPerOp int64 `json:"ns_per_op"`
	// EventsPerOp is the virtual events processed per simulated second —
	// identical across shard counts by the engine's identity contract.
	EventsPerOp uint64 `json:"events_per_op"`
	// SpeedupVsSequential is sequential ns/op over this row's ns/op.
	SpeedupVsSequential float64 `json:"speedup_vs_sequential"`
	// Degraded marks a row whose shard count exceeds GOMAXPROCS: the shards
	// time-slice one another, so the row measures synchronization overhead
	// rather than parallel speedup and must not be quoted as such.
	Degraded   bool                 `json:"degraded,omitempty"`
	ShardStats []partitionShardStat `json:"shard_stats,omitempty"`
}

// partitionBenchFile is the BENCH_partition.json schema.
type partitionBenchFile struct {
	GeneratedBy string `json:"generated_by"`
	// GOMAXPROCS bounds the parallelism actually available: speedup > 1
	// requires GOMAXPROCS >= shards. On a single-core runner the sharded
	// rows measure pure synchronization overhead.
	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Degraded is true when any row ran with more shards than GOMAXPROCS;
	// consumers (and the ROADMAP's rerun-on-real-hardware item) should treat
	// the whole file as a correctness record, not a performance claim.
	Degraded   bool                `json:"degraded,omitempty"`
	Pods       int                 `json:"pods"`
	Iterations int                 `json:"iterations"`
	Results    []partitionBenchRow `json:"results"`
}

// benchPartition times the space-parallel engine at shard counts 1/2/4/8
// over an 8-PoD MR-MTP fabric and writes BENCH_partition.json. Wall-clock
// reads here are the measurement itself, not simulation state.
func benchPartition(_ []topology.Spec, trials int, seed int64, path string) error {
	if trials < 1 {
		trials = 1
	}
	spec := benchPartitionSpec()
	out := partitionBenchFile{
		GeneratedBy: "closlab -experiment bench-partition",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Pods:        spec.Pods,
		Iterations:  trials,
	}
	emitf("Space-parallel engine — %d-PoD MR-MTP fabric, %d x 1s steady state (GOMAXPROCS=%d):\n",
		spec.Pods, trials, out.GOMAXPROCS)
	emitf("%8s %14s %14s %9s\n", "shards", "ns/op", "events/op", "speedup")
	var baseline int64
	for _, shards := range []int{1, 2, 4, 8} {
		opts := harness.DefaultOptions(spec, harness.ProtoMRMTP, seed)
		opts.Partitions = shards
		f, err := harness.Build(opts)
		if err != nil {
			return err
		}
		if err := f.WarmUp(harness.WarmupTime); err != nil {
			return err
		}
		evStart := f.Sim.Events()
		start := time.Now() //simlint:deterministic benchmark harness measuring real elapsed time
		for i := 0; i < trials; i++ {
			f.Sim.RunFor(time.Second)
		}
		elapsed := time.Since(start) //simlint:deterministic benchmark harness measuring real elapsed time
		row := partitionBenchRow{
			Shards:      shards,
			NsPerOp:     elapsed.Nanoseconds() / int64(trials),
			EventsPerOp: (f.Sim.Events() - evStart) / uint64(trials),
		}
		if baseline == 0 {
			baseline = row.NsPerOp
		}
		if row.NsPerOp > 0 {
			row.SpeedupVsSequential = float64(baseline) / float64(row.NsPerOp)
		}
		if shards > out.GOMAXPROCS {
			row.Degraded = true
			out.Degraded = true
			fmt.Fprintf(os.Stderr,
				"closlab: warning: GOMAXPROCS=%d < shards=%d; this row time-slices shards and measures synchronization overhead, not speedup (marked degraded)\n",
				out.GOMAXPROCS, shards)
		}
		if f.Cluster != nil {
			for _, st := range f.Cluster.ShardTimings() {
				row.ShardStats = append(row.ShardStats, partitionShardStat{
					Nodes: st.Nodes, Events: st.Events, BusyNs: st.Busy,
				})
			}
		}
		out.Results = append(out.Results, row)
		emitf("%8d %14d %14d %8.2fx\n", shards, row.NsPerOp, row.EventsPerOp, row.SpeedupVsSequential)
		if f.Cluster != nil {
			for i, st := range f.Cluster.ShardTimings() {
				emitf("%8s   shard %d: %3d nodes, %8d events, busy %v\n", "", i, st.Nodes, st.Events, st.Busy)
			}
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	emitf("wrote %s\n\n", path)
	return nil
}
