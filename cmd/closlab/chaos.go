package main

import (
	"os"
	"path/filepath"

	"repro/internal/harness"
	"repro/internal/topology"
)

// chaosProtocols is the comparison the chaos experiment draws: the paper's
// protocol against the strongest baseline. (Plain BGP's 3 s hold timer loses
// every scenario by seconds; it adds runtime without adding signal.)
var chaosProtocols = []harness.Protocol{harness.ProtoMRMTP, harness.ProtoBGPBFD}

// chaosExperiment runs every catalog scenario against every protocol and
// topology cell, prints the per-cell summaries and writes the injector
// timeline CSV and summary JSON artifacts to dir.
func chaosExperiment(specs []topology.Spec, trials int, seed int64, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var runs []harness.ChaosRun
	for _, spec := range specs {
		for _, proto := range chaosProtocols {
			for _, sc := range harness.ChaosCatalog() {
				s, rs, err := harness.RunChaosTrials(harness.DefaultOptions(spec, proto, seed), sc, trials)
				if err != nil {
					return err
				}
				emitf("%s", harness.RenderChaos(s))
				runs = append(runs, harness.ChaosRun{Summary: s, Trials: rs})
			}
		}
	}
	emitf("\n")

	timelinePath := filepath.Join(dir, "chaos-timeline.csv")
	if err := os.WriteFile(timelinePath, harness.RenderChaosTimelineCSV(runs), 0o644); err != nil {
		return err
	}
	summary, err := harness.RenderChaosSummaryJSON(runs)
	if err != nil {
		return err
	}
	summaryPath := filepath.Join(dir, "chaos-summary.json")
	if err := os.WriteFile(summaryPath, summary, 0o644); err != nil {
		return err
	}
	emitf("chaos: wrote chaos-timeline.csv and chaos-summary.json to %s\n", dir)
	return nil
}
