package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/harness"
	"repro/internal/topology"
	"repro/internal/workload"
)

// fluidBenchRow is one (engine, flow count) measurement.
type fluidBenchRow struct {
	Engine string `json:"engine"`
	Flows  int    `json:"flows"`
	// Skipped rows were not run (the packet engine does not scale to the
	// largest counts); Reason says why.
	Skipped bool   `json:"skipped,omitempty"`
	Reason  string `json:"reason,omitempty"`

	Completed      int `json:"completed,omitempty"`
	PeakConcurrent int `json:"peak_concurrent,omitempty"`
	// VirtualSeconds is the simulated time the trial covered; WallSeconds
	// the real time it took.
	VirtualSeconds float64 `json:"virtual_seconds,omitempty"`
	WallSeconds    float64 `json:"wall_seconds,omitempty"`
	// FlowsPerWallSec is the headline throughput: completed flows per
	// second of real time.
	FlowsPerWallSec float64 `json:"flows_per_wall_sec,omitempty"`
	// NsWallPerSimSec is the simulation cost: wall nanoseconds per
	// simulated second.
	NsWallPerSimSec int64 `json:"ns_wall_per_sim_sec,omitempty"`
}

// fluidBenchFile is the BENCH_fluid.json schema.
type fluidBenchFile struct {
	GeneratedBy string          `json:"generated_by"`
	GOMAXPROCS  int             `json:"gomaxprocs"`
	NumCPU      int             `json:"num_cpu"`
	Pods        int             `json:"pods"`
	Results     []fluidBenchRow `json:"results"`
}

// benchFluid measures workload throughput of the packet engine against the
// hybrid flow-level engine at 10^3..10^6 flows on one fabric and writes
// BENCH_fluid.json. Every row uses fixed 100 kB flows arriving over a ~2 s
// window, so rows differ only in scale. The packet rows stop at 10^4 flows:
// per-packet event cost makes the larger counts impractical, which is the
// point of the fluid engine. Wall-clock reads here are the measurement
// itself, not simulation state.
func benchFluid(spec topology.Spec, seed int64, path string) error {
	out := fluidBenchFile{
		GeneratedBy: "closlab -experiment bench-fluid",
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		Pods:        spec.Pods,
	}
	emitf("Flow-level engine — %d-PoD MR-MTP fabric, 100 kB flows (GOMAXPROCS=%d):\n",
		spec.Pods, out.GOMAXPROCS)
	emitf("%8s %9s %11s %11s %13s %15s\n", "engine", "flows", "virtual_s", "wall_s", "flows/s", "ns/sim_s")
	counts := []int{1_000, 10_000, 100_000, 1_000_000}
	for _, engine := range []workload.Mode{workload.ModePacket, workload.ModeHybrid} {
		for _, n := range counts {
			row := fluidBenchRow{Engine: engine.String(), Flows: n}
			if engine == workload.ModePacket && n > 10_000 {
				row.Skipped = true
				row.Reason = "per-packet event cost: impractical beyond 10^4 flows"
				out.Results = append(out.Results, row)
				emitf("%8s %9d   skipped (%s)\n", row.Engine, n, row.Reason)
				continue
			}
			w := harness.DefaultWorkloadConfig()
			w.Engine = engine
			w.Flows = n
			w.Sizes = workload.FixedSize(100_000)
			w.MeanArrival = 2 * time.Second / time.Duration(n)
			w.MaxRun = 1200 * time.Second
			if n >= 100_000 {
				// Coarser rate epochs and telemetry keep tick count and
				// sample memory bounded as the virtual drain stretches to
				// hundreds of seconds.
				w.RateInterval = 50 * time.Millisecond
				w.SampleInterval = time.Second
			}
			opts := harness.DefaultOptions(spec, harness.ProtoMRMTP, seed)
			start := time.Now() //simlint:deterministic benchmark harness measuring real elapsed time
			res, err := harness.RunWorkload(opts, w)
			if err != nil {
				return fmt.Errorf("%s/%d flows: %w", engine, n, err)
			}
			wall := time.Since(start) //simlint:deterministic benchmark harness measuring real elapsed time
			var virtual time.Duration
			for _, sr := range res.Series {
				if len(sr.Samples) > 0 {
					if at := sr.Samples[len(sr.Samples)-1].At; at > virtual {
						virtual = at
					}
				}
			}
			row.Completed = res.Report.Completed
			row.PeakConcurrent = res.Report.PeakConcurrent
			row.VirtualSeconds = virtual.Seconds()
			row.WallSeconds = wall.Seconds()
			if wall > 0 {
				row.FlowsPerWallSec = float64(res.Report.Completed) / wall.Seconds()
			}
			if virtual > 0 {
				row.NsWallPerSimSec = int64(float64(wall.Nanoseconds()) / virtual.Seconds())
			}
			out.Results = append(out.Results, row)
			emitf("%8s %9d %11.2f %11.2f %13.0f %15d\n",
				row.Engine, n, row.VirtualSeconds, row.WallSeconds, row.FlowsPerWallSec, row.NsWallPerSimSec)
		}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	emitf("wrote %s\n\n", path)
	return nil
}
