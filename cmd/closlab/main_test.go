package main

import (
	"strings"
	"testing"
)

// validateFlags rejects contradictory combinations before any fabric is
// built; each case names the flag that should appear in the error.
func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name       string
		set        []string
		experiment string
		engine     string
		trials     int
		parallel   int
		shards     int
		flows      int
		wantErr    string // empty means the combination is accepted
	}{
		{name: "defaults", experiment: "all", engine: "packet", trials: 1, parallel: 1, shards: 1},
		{name: "workload hybrid", set: []string{"engine", "flows"}, experiment: "workload",
			engine: "hybrid", trials: 3, parallel: 2, shards: 2, flows: 500},
		{name: "bench-fluid with bench-out", set: []string{"bench-out"}, experiment: "bench-fluid",
			engine: "packet", trials: 1, parallel: 1, shards: 1},
		{name: "zero trials", experiment: "all", engine: "packet", trials: 0, parallel: 1, shards: 1,
			wantErr: "-trials"},
		{name: "zero parallel", experiment: "all", engine: "packet", trials: 1, parallel: 0, shards: 1,
			wantErr: "-parallel"},
		{name: "zero shards", experiment: "all", engine: "packet", trials: 1, parallel: 1, shards: 0,
			wantErr: "-shards"},
		{name: "negative flows", experiment: "workload", engine: "packet", trials: 1, parallel: 1, shards: 1,
			flows: -1, wantErr: "-flows"},
		{name: "unknown engine", experiment: "workload", engine: "quantum", trials: 1, parallel: 1, shards: 1,
			wantErr: "-engine"},
		{name: "engine outside workload", set: []string{"engine"}, experiment: "failover",
			engine: "fluid", trials: 1, parallel: 1, shards: 1, wantErr: "-engine only applies"},
		{name: "flows outside workload", set: []string{"flows"}, experiment: "all",
			engine: "packet", trials: 1, parallel: 1, shards: 1, flows: 10, wantErr: "-flows only applies"},
		{name: "bench-out outside benches", set: []string{"bench-out"}, experiment: "workload",
			engine: "packet", trials: 1, parallel: 1, shards: 1, wantErr: "-bench-out only applies"},
		{name: "shards with bench-partition", set: []string{"shards"}, experiment: "bench-partition",
			engine: "packet", trials: 1, parallel: 1, shards: 4, wantErr: "-shards conflicts with bench-partition"},
		{name: "shards with bench-fluid", set: []string{"shards"}, experiment: "bench-fluid",
			engine: "packet", trials: 1, parallel: 1, shards: 2, wantErr: "-shards conflicts with bench-fluid"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := make(map[string]bool, len(tc.set))
			for _, f := range tc.set {
				set[f] = true
			}
			err := validateFlags(set, tc.experiment, tc.engine, tc.trials, tc.parallel, tc.shards, tc.flows)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want error mentioning %q", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
