package main

import (
	"os"
	"path/filepath"

	"repro/internal/harness"
	"repro/internal/topology"
)

// traceProtocols is the observability-plane comparison: the paper's
// protocol against plain BGP/ECMP. Localization needs no BFD — the point
// of path tracing is catching the gray failures liveness protocols miss —
// and probing both data planes shows the technique is plane-agnostic.
var traceProtocols = []harness.Protocol{harness.ProtoMRMTP, harness.ProtoBGP}

// traceExperiment runs every trace-catalog gray-failure scenario against
// every protocol and topology cell, prints the per-cell summaries, and
// writes the per-hop statistics CSV, accusation CSV, summary JSON, and
// merged event timeline artifacts to dir.
func traceExperiment(specs []topology.Spec, trials int, seed int64, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var runs []harness.TraceRun
	for _, spec := range specs {
		for _, proto := range traceProtocols {
			for _, sc := range harness.TraceCatalog() {
				s, rs, err := harness.RunTraceTrials(harness.DefaultOptions(spec, proto, seed), sc, trials)
				if err != nil {
					return err
				}
				emitf("%s", harness.RenderTrace(s))
				runs = append(runs, harness.TraceRun{Summary: s, Trials: rs})
			}
		}
	}
	emitf("\n")

	files := map[string][]byte{
		"trace-hops.csv":        harness.RenderTraceHopsCSV(runs),
		"trace-accusations.csv": harness.RenderTraceAccusationsCSV(runs),
		"trace-timeline.csv":    harness.RenderTraceTimelineCSV(runs),
	}
	summary, err := harness.RenderTraceSummaryJSON(runs)
	if err != nil {
		return err
	}
	files["trace-summary.json"] = summary
	for _, name := range []string{"trace-hops.csv", "trace-accusations.csv", "trace-timeline.csv", "trace-summary.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), files[name], 0o644); err != nil {
			return err
		}
	}
	emitf("trace: wrote trace-hops.csv, trace-accusations.csv, trace-timeline.csv and trace-summary.json to %s\n", dir)
	return nil
}
