// Command tables brings up a fabric in the simulator, lets it converge, and
// dumps per-device state the way the paper's listings do:
//
//	tables -proto bgp   -device S-1-1     # Listing 3: kernel routing table
//	tables -proto bgp   -device T-1 -config  # Listing 1: FRR configuration
//	tables -proto mrmtp -device T-1       # Listing 5: VID table
//	tables -proto mrmtp -config           # Listing 2: fabric-wide JSON
//	tables -proto mrmtp -sizes            # table-size comparison (§VII.H)
//	tables -proto bgp -trace 11,14        # traceroute between racks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/topology"
)

func main() {
	proto := flag.String("proto", "mrmtp", "mrmtp or bgp")
	device := flag.String("device", "", "device to dump (e.g. T-1, S-1-1); empty = all routers")
	pods := flag.Int("pods", 4, "topology size in PoDs")
	config := flag.Bool("config", false, "print configuration instead of tables")
	sizes := flag.Bool("sizes", false, "print routing/VID table sizes for every router")
	neighbors := flag.Bool("neighbors", false, "print adjacency/session summaries instead of tables")
	trace := flag.String("trace", "", "traceroute between two rack VIDs, e.g. -trace 11,14")
	flag.Parse()

	spec := topology.Spec{Pods: *pods, LeavesPerPod: 2, SpinesPerPod: 2, UplinksPerSpine: 2, ServersPerLeaf: 1}
	var p harness.Protocol
	switch *proto {
	case "mrmtp":
		p = harness.ProtoMRMTP
	case "bgp":
		p = harness.ProtoBGP
	default:
		fatalf("unknown -proto %q", *proto)
	}

	if *config {
		topo, err := topology.Build(spec)
		if err != nil {
			fatalf("%v", err)
		}
		if p == harness.ProtoMRMTP {
			blob, err := topo.MRMTPConfig().Render()
			if err != nil {
				fatalf("%v", err)
			}
			emitf("%s\n", string(blob))
			return
		}
		devs := []string{*device}
		if *device == "" {
			devs = devs[:0]
			for _, d := range topo.Routers() {
				devs = append(devs, d.Name)
			}
		}
		for _, name := range devs {
			cfg, err := topo.BGPConfig(name, true)
			if err != nil {
				fatalf("%v", err)
			}
			emitf("=== %s ===\n%s\n", name, cfg)
		}
		return
	}

	f, err := harness.Build(harness.DefaultOptions(spec, p, 1))
	if err != nil {
		fatalf("%v", err)
	}
	if err := f.WarmUp(harness.WarmupTime); err != nil {
		fatalf("fabric did not converge: %v", err)
	}

	if *trace != "" {
		var srcVID, dstVID int
		if _, err := fmt.Sscanf(*trace, "%d,%d", &srcVID, &dstVID); err != nil {
			fatalf("bad -trace %q (want e.g. 11,14)", *trace)
		}
		hops, err := harness.Traceroute(f, srcVID, dstVID, 16)
		if err != nil {
			fatalf("%v", err)
		}
		emitf("traceroute VID %d -> VID %d over %s:\n%s", srcVID, dstVID, p, harness.RenderHops(hops))
		return
	}

	if *sizes {
		emitf("%-8s %s\n", "router", "table entries")
		for _, d := range f.Topo.Routers() {
			n := 0
			if p == harness.ProtoMRMTP {
				n = f.Routers[d.Name].TableSize()
			} else {
				n = f.Stacks[d.Name].FIB.Len()
			}
			emitf("%-8s %d\n", d.Name, n)
		}
		return
	}

	devs := []string{*device}
	if *device == "" {
		devs = devs[:0]
		for _, d := range f.Topo.Routers() {
			devs = append(devs, d.Name)
		}
	}
	for _, name := range devs {
		if f.Topo.Device(name) == nil {
			fatalf("no device %q", name)
		}
		emitf("=== %s ===\n", name)
		switch {
		case *neighbors && p == harness.ProtoMRMTP:
			emitf("%s\n", f.Routers[name].Summary())
			emitf("%s", f.Routers[name].RenderNeighbors())
			emitf("%s", f.Routers[name].RenderUnreachable())
		case *neighbors:
			emitf("%s", f.Speakers[name].RenderSummary())
		case p == harness.ProtoMRMTP:
			emitf("%s", f.Routers[name].RenderVIDTable())
		default:
			emitf("%s", f.Stacks[name].FIB.Render())
		}
		emitf("\n")
	}
}

func fatalf(format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, "tables: "+format+"\n", args...) // best effort: exiting anyway
	os.Exit(1)
}

// emitf writes listing output to stdout and dies if the write fails: the
// dumped tables and configs are the command's artifact (usually redirected
// to a file), so a short write must not look like success.
func emitf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		fatalf("writing output: %v", err)
	}
}
