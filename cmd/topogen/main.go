// Command topogen builds a folded-Clos topology description, verifies its
// structural invariants, and emits the paper's Listing-2 MR-MTP
// configuration JSON (or validates an existing one with -validate).
//
// Usage:
//
//	topogen -pods 4                      # emit the 4-PoD Listing-2 JSON
//	topogen -pods 8 -leaves 4 -spines 4  # scale-out fabric (paper §IX)
//	topogen -pods 8 -servers-per-tor 2   # clos_tinet_scale.py flag spelling
//	topogen -pods 8 -partitions 4 -summary  # check a space-parallel shard count
//	topogen -validate config.json        # check an existing file
//	topogen -pods 4 -summary             # device/link inventory only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/topology"
)

func main() {
	pods := flag.Int("pods", 2, "number of PoDs")
	leaves := flag.Int("leaves", 2, "ToRs per PoD")
	spines := flag.Int("spines", 2, "tier-2 spines per PoD")
	uplinks := flag.Int("uplinks", 2, "uplinks per tier-2 spine")
	servers := flag.Int("servers", 1, "servers per rack")
	serversPerTor := flag.Int("servers-per-tor", 0,
		"alias for -servers (the clos_tinet_scale.py spelling); overrides -servers when set")
	partitions := flag.Int("partitions", 1,
		"check the fabric against a space-parallel shard count (must divide the PoD count)")
	summary := flag.Bool("summary", false, "print the fabric inventory instead of JSON")
	validate := flag.String("validate", "", "validate an existing Listing-2 JSON file")
	flag.Parse()
	if *serversPerTor > 0 {
		*servers = *serversPerTor
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fatalf("%v", err)
		}
		cfg, err := topology.ParseConfig(data)
		if err != nil {
			fatalf("%v", err)
		}
		emitf("%s: valid MR-MTP configuration (%d leaves, %d top spines, %d pods)\n",
			*validate, len(cfg.Topology.Leaves), len(cfg.Topology.TopSpines), len(cfg.Topology.Pods))
		return
	}

	spec := topology.Spec{
		Pods:            *pods,
		LeavesPerPod:    *leaves,
		SpinesPerPod:    *spines,
		UplinksPerSpine: *uplinks,
		ServersPerLeaf:  *servers,
	}
	topo, err := topology.Build(spec)
	if err != nil {
		fatalf("%v", err)
	}
	// Reject an invalid shard count here, where the operator is still
	// designing the fabric, rather than at simulation build time.
	if *partitions > 1 {
		part, err := topology.PartitionByPod(topo, *partitions)
		if err != nil {
			fatalf("%v", err)
		}
		counts := make([]int, part.Shards)
		for _, d := range topo.Routers() {
			if s, ok := part.Shard(d.Name); ok {
				counts[s]++
			}
		}
		emitf("partitioning: %d shards over %d PoDs, routers per shard %v\n",
			part.Shards, spec.Pods, counts)
	}
	if *summary {
		emitf("fabric: %d PoDs, %d routers (%d leaves, %d pod spines, %d top spines), %d servers, %d links\n",
			spec.Pods, len(topo.Routers()), len(topo.Leaves), len(topo.Spines), len(topo.Tops),
			len(topo.Servers), len(topo.Links))
		for _, leaf := range topo.Leaves {
			emitf("  %s: VID %d, subnet %s, ASN %d\n", leaf.Name, leaf.VID, leaf.ServerSubnet, leaf.ASN)
		}
		return
	}
	blob, err := topo.MRMTPConfig().Render()
	if err != nil {
		fatalf("%v", err)
	}
	emitf("%s\n", string(blob))
}

func fatalf(format string, args ...any) {
	_, _ = fmt.Fprintf(os.Stderr, "topogen: "+format+"\n", args...) // best effort: exiting anyway
	os.Exit(1)
}

// emitf writes the generated artifact to stdout and dies if the write fails:
// topogen's JSON is meant to be redirected to a config file, so a short
// write must not exit zero.
func emitf(format string, args ...any) {
	if _, err := fmt.Printf(format, args...); err != nil {
		fatalf("writing output: %v", err)
	}
}
