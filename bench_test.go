// Package repro's root benchmark suite regenerates every figure and listing
// of the paper's evaluation (§VII). Each benchmark runs the corresponding
// experiment end-to-end in the simulator and reports the paper's metric via
// b.ReportMetric, so `go test -bench . -benchmem` prints the whole
// evaluation:
//
//	Fig. 4  BenchmarkFig4Convergence      -> ms_convergence
//	Fig. 5  BenchmarkFig5BlastRadius      -> routers_updated
//	Fig. 6  BenchmarkFig6ControlOverhead  -> bytes_control
//	Fig. 7  BenchmarkFig7PacketLossNear   -> packets_lost
//	Fig. 8  BenchmarkFig8PacketLossFar    -> packets_lost
//	Fig. 9  BenchmarkFig9KeepAliveBGPBFD  -> bytes_per_s and B/frame
//	Fig. 10 BenchmarkFig10KeepAliveMRMTP  -> bytes_per_s and B/frame
//	L. 1-2  BenchmarkListingConfigBurden  -> bytes_config
//	L. 3/5  BenchmarkListingTableSizes    -> table_entries
//
// The Ablation* benchmarks (hello interval, BFD multiplier, BGP timers,
// MRAI, Slow-to-Accept) cover the design choices called out in DESIGN.md
// §6, and the Scale*/Extended* benchmarks cover the paper's §IX future
// work (PoD scaling, a four-tier fabric, whole-router crashes).
package repro

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/capture"
	"repro/internal/harness"
	"repro/internal/topology"
)

var benchProtocols = []harness.Protocol{harness.ProtoMRMTP, harness.ProtoBGP, harness.ProtoBGPBFD}

func benchSpecs() []topology.Spec {
	return []topology.Spec{topology.TwoPodSpec(), topology.FourPodSpec()}
}

// forEachCell runs one sub-benchmark per (topology, protocol, failure case)
// cell of the paper's figure grids.
func forEachCell(b *testing.B, fn func(b *testing.B, spec topology.Spec, proto harness.Protocol, tc topology.FailureCase)) {
	for _, spec := range benchSpecs() {
		for _, proto := range benchProtocols {
			for _, tc := range topology.AllFailureCases() {
				name := fmt.Sprintf("%dpod/%s/%s", spec.Pods, proto, tc)
				spec, proto, tc := spec, proto, tc
				b.Run(name, func(b *testing.B) { fn(b, spec, proto, tc) })
			}
		}
	}
}

func runFailureCell(b *testing.B, spec topology.Spec, proto harness.Protocol, tc topology.FailureCase) harness.FailureSummary {
	b.Helper()
	s, err := harness.RunFailureTrials(harness.DefaultOptions(spec, proto, 1), tc, b.N)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkFig4Convergence(b *testing.B) {
	forEachCell(b, func(b *testing.B, spec topology.Spec, proto harness.Protocol, tc topology.FailureCase) {
		s := runFailureCell(b, spec, proto, tc)
		b.ReportMetric(float64(s.Convergence)/float64(time.Millisecond), "ms_convergence")
	})
}

func BenchmarkFig5BlastRadius(b *testing.B) {
	forEachCell(b, func(b *testing.B, spec topology.Spec, proto harness.Protocol, tc topology.FailureCase) {
		s := runFailureCell(b, spec, proto, tc)
		b.ReportMetric(s.BlastRadius, "routers_updated")
	})
}

func BenchmarkFig6ControlOverhead(b *testing.B) {
	forEachCell(b, func(b *testing.B, spec topology.Spec, proto harness.Protocol, tc topology.FailureCase) {
		s := runFailureCell(b, spec, proto, tc)
		b.ReportMetric(s.ControlBytes, "bytes_control")
	})
}

func benchLoss(b *testing.B, reverse bool) {
	forEachCell(b, func(b *testing.B, spec topology.Spec, proto harness.Protocol, tc topology.FailureCase) {
		avg, err := harness.RunLossTrials(harness.DefaultOptions(spec, proto, 1), tc, reverse, b.N)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(avg, "packets_lost")
	})
}

func BenchmarkFig7PacketLossNear(b *testing.B) { benchLoss(b, false) }

func BenchmarkFig8PacketLossFar(b *testing.B) { benchLoss(b, true) }

func benchKeepAlive(b *testing.B, proto harness.Protocol, classes []capture.Class) {
	window := 10 * time.Second
	var bytesTotal, frameCount float64
	for i := 0; i < b.N; i++ {
		r, err := harness.RunKeepAlive(harness.DefaultOptions(topology.TwoPodSpec(), proto, int64(i+1)), window)
		if err != nil {
			b.Fatal(err)
		}
		for _, cl := range classes {
			bytesTotal += float64(r.Summary[cl].Bytes)
			frameCount += float64(r.Summary[cl].Count)
		}
	}
	b.ReportMetric(bytesTotal/float64(b.N)/window.Seconds(), "bytes_per_s")
	if frameCount > 0 {
		b.ReportMetric(bytesTotal/frameCount, "B/frame")
	}
}

func BenchmarkFig9KeepAliveBGPBFD(b *testing.B) {
	b.Run("bfd", func(b *testing.B) {
		benchKeepAlive(b, harness.ProtoBGPBFD, []capture.Class{capture.ClassBFD})
	})
	b.Run("bgp-keepalive", func(b *testing.B) {
		benchKeepAlive(b, harness.ProtoBGPBFD, []capture.Class{capture.ClassBGPKeepalive})
	})
	b.Run("tcp-ack", func(b *testing.B) {
		benchKeepAlive(b, harness.ProtoBGPBFD, []capture.Class{capture.ClassTCPAck})
	})
}

func BenchmarkFig10KeepAliveMRMTP(b *testing.B) {
	b.Run("hello", func(b *testing.B) {
		benchKeepAlive(b, harness.ProtoMRMTP, []capture.Class{capture.ClassMTPHello})
	})
}

func BenchmarkListingConfigBurden(b *testing.B) {
	for _, spec := range benchSpecs() {
		b.Run(fmt.Sprintf("%dpod", spec.Pods), func(b *testing.B) {
			var bgpBytes, mtpBytes float64
			for i := 0; i < b.N; i++ {
				topo, err := topology.Build(spec)
				if err != nil {
					b.Fatal(err)
				}
				cs, err := topo.MeasureConfigs(true)
				if err != nil {
					b.Fatal(err)
				}
				bgpBytes = float64(cs.BGPBytes)
				mtpBytes = float64(cs.MRMTPBytes)
			}
			b.ReportMetric(bgpBytes, "bytes_bgp_config")
			b.ReportMetric(mtpBytes, "bytes_mrmtp_config")
		})
	}
}

func BenchmarkListingTableSizes(b *testing.B) {
	for _, proto := range []harness.Protocol{harness.ProtoMRMTP, harness.ProtoBGP} {
		b.Run(proto.String(), func(b *testing.B) {
			var spine, top float64
			for i := 0; i < b.N; i++ {
				f, err := harness.Build(harness.DefaultOptions(topology.FourPodSpec(), proto, 1))
				if err != nil {
					b.Fatal(err)
				}
				if err := f.WarmUp(harness.WarmupTime); err != nil {
					b.Fatal(err)
				}
				if proto == harness.ProtoMRMTP {
					spine = float64(f.Routers["S-1-1"].TableSize())
					top = float64(f.Routers["T-1"].TableSize())
				} else {
					spine = float64(f.Stacks["S-1-1"].FIB.Len())
					top = float64(f.Stacks["T-1"].FIB.Len())
				}
			}
			b.ReportMetric(spine, "spine_table_entries")
			b.ReportMetric(top, "top_table_entries")
		})
	}
}

// --- ablations (DESIGN.md §6) ----------------------------------------------

// runAblationCell runs one ablation configuration through the parallel
// trial runner and reports mean TC1 convergence.
func runAblationCell(b *testing.B, opts harness.Options) {
	b.Helper()
	s, err := harness.RunFailureTrials(opts, topology.TC1, b.N)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(s.Convergence)/float64(time.Millisecond), "ms_convergence")
}

// BenchmarkAblationHelloInterval sweeps MR-MTP's hello timer: faster hellos
// buy faster TC1 convergence at the cost of keep-alive traffic.
func BenchmarkAblationHelloInterval(b *testing.B) {
	for _, hello := range []time.Duration{25 * time.Millisecond, 50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond} {
		b.Run(hello.String(), func(b *testing.B) {
			opts := harness.DefaultOptions(topology.TwoPodSpec(), harness.ProtoMRMTP, 1)
			opts.MTPHello = hello
			opts.MTPDead = 2 * hello
			runAblationCell(b, opts)
		})
	}
}

// BenchmarkAblationBFDMultiplier sweeps the BFD detect multiplier, trading
// false-positive robustness against detection latency (paper §VI.F).
func BenchmarkAblationBFDMultiplier(b *testing.B) {
	for _, mult := range []int{2, 3, 5} {
		b.Run(fmt.Sprintf("mult%d", mult), func(b *testing.B) {
			opts := harness.DefaultOptions(topology.TwoPodSpec(), harness.ProtoBGPBFD, 1)
			opts.BFD.DetectMult = mult
			runAblationCell(b, opts)
		})
	}
}

// BenchmarkAblationBGPTimers contrasts the paper's tuned `timers bgp 1 3`
// against FRR's untuned default (keepalive 60 s, hold 180 s — scaled to
// 3/9 here to keep runtime sane while preserving the 3x ratio).
func BenchmarkAblationBGPTimers(b *testing.B) {
	for _, timers := range []struct {
		name      string
		keepalive time.Duration
		hold      time.Duration
	}{
		{"paper-1s-3s", time.Second, 3 * time.Second},
		{"untuned-3s-9s", 3 * time.Second, 9 * time.Second},
	} {
		b.Run(timers.name, func(b *testing.B) {
			opts := harness.DefaultOptions(topology.TwoPodSpec(), harness.ProtoBGP, 1)
			opts.BGPTimers.Keepalive = timers.keepalive
			opts.BGPTimers.Hold = timers.hold
			runAblationCell(b, opts)
		})
	}
}

// BenchmarkAblationMRAI shows why RFC 7938 fabrics run MRAI=0: pacing
// update bursts delays reconvergence after the hold timer already fired.
func BenchmarkAblationMRAI(b *testing.B) {
	for _, mrai := range []time.Duration{0, 500 * time.Millisecond, 2 * time.Second} {
		b.Run(fmt.Sprintf("mrai-%v", mrai), func(b *testing.B) {
			opts := harness.DefaultOptions(topology.TwoPodSpec(), harness.ProtoBGP, 1)
			opts.BGPTimers.MRAI = mrai
			runAblationCell(b, opts)
		})
	}
}

// BenchmarkScalePods extends the evaluation along the paper's §IX axis:
// fabric size versus convergence and control overhead under MR-MTP.
func BenchmarkScalePods(b *testing.B) {
	for _, pods := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("%dpod", pods), func(b *testing.B) {
			spec := topology.Spec{Pods: pods, LeavesPerPod: 2, SpinesPerPod: 2, UplinksPerSpine: 2, ServersPerLeaf: 1}
			var conv, ctl float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunFailure(harness.DefaultOptions(spec, harness.ProtoMRMTP, int64(i+1)), topology.TC1)
				if err != nil {
					b.Fatal(err)
				}
				conv += float64(r.Convergence) / float64(time.Millisecond)
				ctl += float64(r.ControlBytes)
			}
			b.ReportMetric(conv/float64(b.N), "ms_convergence")
			b.ReportMetric(ctl/float64(b.N), "bytes_control")
		})
	}
}

// BenchmarkFabricBringUp measures simulator cost, not protocol behaviour:
// how long a full warm-up takes per configuration (useful when sizing
// larger sweeps).
func BenchmarkFabricBringUp(b *testing.B) {
	for _, proto := range benchProtocols {
		b.Run(proto.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				f, err := harness.Build(harness.DefaultOptions(topology.FourPodSpec(), proto, int64(i+1)))
				if err != nil {
					b.Fatal(err)
				}
				if err := f.WarmUp(harness.WarmupTime); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScaleTiers extends along the paper's other §IX axis: a four-tier
// fabric (zones of pods under super spines). Convergence stays dead-timer
// bound even with an extra tier of meshed trees.
func BenchmarkScaleTiers(b *testing.B) {
	mt := topology.MultiTierSpec{
		Zones: 2, PodsPerZone: 2, LeavesPerPod: 2,
		SpinesPerPod: 2, UplinksPerSpine: 2, UplinksPerZone: 2,
		ServersPerLeaf: 1,
	}
	b.Run("4tier/MR-MTP", func(b *testing.B) {
		var conv float64
		for i := 0; i < b.N; i++ {
			opts := harness.DefaultOptions(topology.Spec{}, harness.ProtoMRMTP, int64(i+1))
			opts.MultiTier = &mt
			f, err := harness.Build(opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := f.WarmUp(harness.WarmupTime); err != nil {
				b.Fatal(err)
			}
			f.Log.Reset()
			failAt := f.Sim.Now()
			f.Sim.Node("A-1-1").Port(1).Fail()
			f.Sim.RunFor(5 * time.Second)
			conv += float64(f.Log.Analyze(failAt).Convergence) / float64(time.Millisecond)
		}
		b.ReportMetric(conv/float64(b.N), "ms_convergence")
	})
}

// BenchmarkExtendedNodeFailure measures the whole-router-crash case
// (paper §IX "extended failure test cases").
func BenchmarkExtendedNodeFailure(b *testing.B) {
	for _, proto := range benchProtocols {
		b.Run(proto.String(), func(b *testing.B) {
			var conv, blast float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunNodeFailure(harness.DefaultOptions(topology.TwoPodSpec(), proto, int64(i+1)), "S-1-1")
				if err != nil {
					b.Fatal(err)
				}
				conv += float64(r.Convergence) / float64(time.Millisecond)
				blast += float64(r.BlastRadius)
			}
			b.ReportMetric(conv/float64(b.N), "ms_convergence")
			b.ReportMetric(blast/float64(b.N), "routers_updated")
		})
	}
}

// BenchmarkAblationSlowToAccept quantifies the dampening design choice:
// control churn under a flapping interface with and without the
// three-consecutive-hellos rule.
func BenchmarkAblationSlowToAccept(b *testing.B) {
	for _, accept := range []int{1, 3} {
		b.Run(fmt.Sprintf("acceptAfter%d", accept), func(b *testing.B) {
			opts := harness.DefaultOptions(topology.TwoPodSpec(), harness.ProtoMRMTP, 1)
			opts.MTPAccept = accept
			s, err := harness.RunFlapTrials(opts, 8, 150*time.Millisecond, 120*time.Millisecond, b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(s.ControlBytes, "bytes_churn")
		})
	}
}

// BenchmarkPartitionedFabric measures the space-parallel engine: one
// 8-PoD fabric sharded across worker goroutines, timed over steady-state
// hello/keep-alive churn after warm-up. The shards-1 case is the sequential
// baseline (harness builds a plain Sim); speedup is wall time at 1 shard
// over wall time at N. Parallel gain needs GOMAXPROCS ≥ shards — on a
// single-core runner the sharded cases measure pure synchronization
// overhead instead.
func BenchmarkPartitionedFabric(b *testing.B) {
	spec := topology.Spec{Pods: 8, LeavesPerPod: 4, SpinesPerPod: 4, UplinksPerSpine: 2, ServersPerLeaf: 1}
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			opts := harness.DefaultOptions(spec, harness.ProtoMRMTP, 1)
			opts.Partitions = shards
			f, err := harness.Build(opts)
			if err != nil {
				b.Fatal(err)
			}
			if err := f.WarmUp(harness.WarmupTime); err != nil {
				b.Fatal(err)
			}
			start := f.Sim.Events()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Sim.RunFor(time.Second)
			}
			b.StopTimer()
			b.ReportMetric(float64(f.Sim.Events()-start)/float64(b.N), "events/op")
		})
	}
}

// BenchmarkCongestionGoodput oversubscribes rate-limited fabric links
// (8 Mb/s each, 32 flows ≈ 21 Mb/s offered from one rack) and reports the
// delivered fraction — how well each protocol's flow hashing exploits the
// fabric's parallel planes.
func BenchmarkCongestionGoodput(b *testing.B) {
	for _, proto := range []harness.Protocol{harness.ProtoMRMTP, harness.ProtoBGP} {
		b.Run(proto.String(), func(b *testing.B) {
			var delivered, offered float64
			for i := 0; i < b.N; i++ {
				r, err := harness.RunCongestion(
					harness.DefaultOptions(topology.TwoPodSpec(), proto, int64(i+1)),
					32, 8_000_000, 3*time.Second)
				if err != nil {
					b.Fatal(err)
				}
				delivered += float64(r.Delivered)
				offered += float64(r.Offered)
			}
			b.ReportMetric(delivered/float64(b.N), "packets_delivered")
			b.ReportMetric(delivered/offered*100, "pct_goodput")
		})
	}
}
